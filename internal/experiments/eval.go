package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/vfs"
	"github.com/ginja-dr/ginja/internal/workload/tpcc"
)

// ginjaParams builds a Params with the paper's evaluation settings
// (5 uploaders) and the given B/S and envelope flags.
func ginjaParams(b, s int, compress, encrypt bool) core.Params {
	p := core.DefaultParams()
	p.Batch = b
	p.Safety = s
	p.Uploaders = 5
	p.BatchTimeout = 500 * time.Millisecond
	p.SafetyTimeout = 30 * time.Second
	p.Compress = compress
	p.Encrypt = encrypt
	if encrypt {
		p.Password = "ginja-eval-password"
	}
	return p
}

// Figure5Cell is one column of Figure 5.
type Figure5Cell struct {
	Label    string
	Baseline Baseline
	B, S     int
}

// Figure5Cells returns the paper's Figure 5 column set: native FS, the
// interception layer alone, the B×S grid, and No-Loss (S=B=1).
func Figure5Cells() []Figure5Cell {
	return []Figure5Cell{
		{Label: "ext4", Baseline: BaselineNative},
		{Label: "FUSE", Baseline: BaselineIntercept},
		{Label: "B=1000 S=10000", Baseline: BaselineGinja, B: 1000, S: 10000},
		{Label: "B=100 S=10000", Baseline: BaselineGinja, B: 100, S: 10000},
		{Label: "B=10 S=10000", Baseline: BaselineGinja, B: 10, S: 10000},
		{Label: "B=100 S=1000", Baseline: BaselineGinja, B: 100, S: 1000},
		{Label: "B=10 S=1000", Baseline: BaselineGinja, B: 10, S: 1000},
		{Label: "B=1 S=1000", Baseline: BaselineGinja, B: 1, S: 1000},
		{Label: "B=10 S=100", Baseline: BaselineGinja, B: 10, S: 100},
		{Label: "B=1 S=100", Baseline: BaselineGinja, B: 1, S: 100},
		{Label: "B=1 S=10", Baseline: BaselineGinja, B: 1, S: 10},
		{Label: "No-Loss (S=B=1)", Baseline: BaselineGinja, B: 1, S: 1},
	}
}

// Figure5Row is one measured column of Figure 5.
type Figure5Row struct {
	Cell     Figure5Cell
	TpmC     float64
	TpmTotal float64
}

// Figure5 measures TPC-C throughput across the configuration grid for one
// engine ("postgresql" → Figure 5a, "mysql" → Figure 5b).
func Figure5(ctx context.Context, engineName string, cellDuration time.Duration) ([]Figure5Row, error) {
	var rows []Figure5Row
	for _, cell := range Figure5Cells() {
		opts := TPCCOptions{
			EngineName: engineName,
			Baseline:   cell.Baseline,
			Duration:   cellDuration,
		}
		if cell.Baseline == BaselineGinja {
			opts.Params = ginjaParams(cell.B, cell.S, false, false)
		}
		res, err := RunTPCC(ctx, opts)
		if err != nil {
			return nil, fmt.Errorf("figure5 %s %q: %w", engineName, cell.Label, err)
		}
		rows = append(rows, Figure5Row{Cell: cell, TpmC: res.TpmC, TpmTotal: res.TpmTotal})
	}
	return rows, nil
}

// Figure6Cell is one column group of Figure 6.
type Figure6Cell struct {
	Label    string
	B, S     int
	Compress bool
	Encrypt  bool
}

// Figure6Cells returns the paper's Figure 6 grid: three B/S configurations
// × {normal, compression, encryption, both}.
func Figure6Cells() []Figure6Cell {
	var cells []Figure6Cell
	for _, bs := range []struct{ b, s int }{{10, 100}, {100, 1000}, {1000, 10000}} {
		for _, mode := range []struct {
			label    string
			comp, cr bool
		}{
			{"Normal", false, false},
			{"Comp", true, false},
			{"Crypt", false, true},
			{"C+C", true, true},
		} {
			cells = append(cells, Figure6Cell{
				Label:    fmt.Sprintf("%d/%d %s", bs.b, bs.s, mode.label),
				B:        bs.b,
				S:        bs.s,
				Compress: mode.comp,
				Encrypt:  mode.cr,
			})
		}
	}
	return cells
}

// Figure6Row is one measured column of Figure 6.
type Figure6Row struct {
	Cell     Figure6Cell
	TpmC     float64
	TpmTotal float64
}

// Figure6 measures the effect of compression and encryption on TPC-C
// throughput for one engine.
func Figure6(ctx context.Context, engineName string, cellDuration time.Duration) ([]Figure6Row, error) {
	var rows []Figure6Row
	for _, cell := range Figure6Cells() {
		res, err := RunTPCC(ctx, TPCCOptions{
			EngineName: engineName,
			Baseline:   BaselineGinja,
			Params:     ginjaParams(cell.B, cell.S, cell.Compress, cell.Encrypt),
			Duration:   cellDuration,
		})
		if err != nil {
			return nil, fmt.Errorf("figure6 %s %q: %w", engineName, cell.Label, err)
		}
		rows = append(rows, Figure6Row{Cell: cell, TpmC: res.TpmC, TpmTotal: res.TpmTotal})
	}
	return rows, nil
}

// Table3Row is one configuration row of Table 3.
type Table3Row struct {
	Config        string
	Engine        string
	NumPUTs       int64   // scaled to the paper's 5-minute window
	ObjectSizeKB  float64 // mean uploaded WAL object size
	PutLatencyMS  float64 // mean modelled PUT latency
	RawWindowPUTs int64   // unscaled PUTs in the measured window
}

// Table3 reproduces the cloud-usage table: PUT count (normalised to a
// five-minute window like the paper), mean object size and modelled PUT
// latency, for {10/100, 100/1000, 1000/10000} × {plain, C+C}.
func Table3(ctx context.Context, engineName string, cellDuration time.Duration) ([]Table3Row, error) {
	var rows []Table3Row
	for _, bs := range []struct{ b, s int }{{10, 100}, {100, 1000}, {1000, 10000}} {
		for _, sealed := range []struct {
			label string
			cc    bool
		}{{"plain", false}, {"C+C", true}} {
			res, err := RunTPCC(ctx, TPCCOptions{
				EngineName: engineName,
				Baseline:   BaselineGinja,
				Params:     ginjaParams(bs.b, bs.s, sealed.cc, sealed.cc),
				Duration:   cellDuration,
			})
			if err != nil {
				return nil, fmt.Errorf("table3 %s %d/%d %s: %w", engineName, bs.b, bs.s, sealed.label, err)
			}
			scale := (5 * time.Minute).Seconds() / cellDuration.Seconds()
			rows = append(rows, Table3Row{
				Config:        fmt.Sprintf("%d/%d %s", bs.b, bs.s, sealed.label),
				Engine:        engineName,
				NumPUTs:       int64(float64(res.Ginja.WALObjectsUploaded) * scale),
				ObjectSizeKB:  res.WALObjectMeanBytes / 1000,
				PutLatencyMS:  float64(res.ModelledPutLatency.Mean()) / float64(time.Millisecond),
				RawWindowPUTs: res.Ginja.WALObjectsUploaded,
			})
		}
	}
	return rows, nil
}

// Table4Row is one configuration row of Table 4.
type Table4Row struct {
	Config     string
	CPUPercent float64
	MemPercent float64 // of the paper's 32 GB server
}

// Table4 reproduces the resource-usage table for one engine: native FS,
// interception only, and the 100/1000 configuration with each envelope
// mode. CPU is process CPU over the run; memory is the Go runtime
// footprint against the paper's 32 GB server.
func Table4(ctx context.Context, engineName string, cellDuration time.Duration) ([]Table4Row, error) {
	const serverRAM = 32 << 30
	cells := []struct {
		label      string
		baseline   Baseline
		comp, encr bool
	}{
		{"Native FS", BaselineNative, false, false},
		{"FUSE FS", BaselineIntercept, false, false},
		{"100/1000", BaselineGinja, false, false},
		{"100/1000 Comp", BaselineGinja, true, false},
		{"100/1000 Crypt", BaselineGinja, false, true},
		{"100/1000 C+C", BaselineGinja, true, true},
	}
	var rows []Table4Row
	for _, cell := range cells {
		// A paced workload (terminals think between transactions) keeps
		// the process off CPU saturation, like the paper's I/O-bound
		// testbed, so the per-feature overheads are visible as deltas.
		workload := tpcc.DefaultConfig()
		workload.ThinkTime = 2 * time.Millisecond
		if engineName == "mysql" {
			workload.Warehouses = 2
			workload.Terminals = 12
			// InnoDB-style commits cost more CPU (512-byte log blocks →
			// more page writes); pace harder to stay off saturation.
			workload.ThinkTime = 6 * time.Millisecond
		}
		opts := TPCCOptions{
			EngineName: engineName,
			Baseline:   cell.baseline,
			Duration:   cellDuration,
			Workload:   workload,
		}
		if cell.baseline == BaselineGinja {
			opts.Params = ginjaParams(100, 1000, cell.comp, cell.encr)
		}
		res, err := RunTPCC(ctx, opts)
		if err != nil {
			return nil, fmt.Errorf("table4 %s %q: %w", engineName, cell.label, err)
		}
		rows = append(rows, Table4Row{
			Config:     cell.label,
			CPUPercent: res.Resources.CPUPercent,
			MemPercent: res.Resources.MemoryPercent(serverRAM),
		})
	}
	return rows, nil
}

// RecoveryOptions configures a Figure 7 measurement.
type RecoveryOptions struct {
	EngineName string
	Warehouses int
	// Seconds of TPC-C to run before the disaster (grows the WAL tail).
	WorkloadDuration time.Duration
	// Profile models where recovery runs: WANProfile ≈ the on-premises
	// server, LANProfile ≈ an EC2 VM in the bucket's region.
	Profile cloudsim.Profile
	// TimeScale compresses simulated latency during measurement.
	TimeScale float64
	Seed      int64
}

// RecoveryResult is one Figure 7 sample.
type RecoveryResult struct {
	Warehouses int
	// ModelledTime is the recovery duration a real deployment would see,
	// dominated by object downloads (paper §8.3: "the key factor here is
	// the database download time").
	ModelledTime time.Duration
	// BytesDownloaded during the restore.
	BytesDownloaded int64
	// Objects fetched.
	Objects int64
}

// RunRecovery builds a TPC-C database of the given scale under Ginja,
// checkpoints and drains it, destroys the primary, and measures a full
// Recovery from the cloud (Figure 7).
func RunRecovery(ctx context.Context, opts RecoveryOptions) (RecoveryResult, error) {
	var res RecoveryResult
	if opts.EngineName == "" {
		opts.EngineName = "postgresql"
	}
	if opts.Warehouses == 0 {
		opts.Warehouses = 1
	}
	if opts.WorkloadDuration == 0 {
		opts.WorkloadDuration = time.Second
	}
	if opts.TimeScale == 0 {
		opts.TimeScale = 200
	}
	if opts.Profile == (cloudsim.Profile{}) {
		opts.Profile = cloudsim.WANProfile()
	}
	res.Warehouses = opts.Warehouses

	engine, err := engineFor(opts.EngineName)
	if err != nil {
		return res, err
	}
	base := cloud.NewMemStore()
	// Build phase: no latency simulation, we only need the cloud state.
	g, err := core.New(vfs.NewMemFS(), base, dbevent.ForEngine(opts.EngineName),
		ginjaParams(100, 1000, false, false))
	if err != nil {
		return res, err
	}
	if err := g.Boot(ctx); err != nil {
		return res, err
	}
	db, err := minidb.Open(g.FS(), engine, minidb.Options{})
	if err != nil {
		return res, err
	}
	cfg := tpcc.DefaultConfig()
	cfg.Warehouses = opts.Warehouses
	cfg.Terminals = 4
	if err := tpcc.Load(db, cfg); err != nil {
		return res, err
	}
	driver := tpcc.NewDriver(db, cfg)
	if _, err := driver.Run(ctx, opts.WorkloadDuration); err != nil {
		return res, err
	}
	if err := db.Checkpoint(); err != nil {
		return res, err
	}
	if !g.Flush(30 * time.Second) {
		return res, fmt.Errorf("experiments: flush before disaster timed out")
	}
	// Wait for the checkpoint upload to land.
	deadline := time.Now().Add(30 * time.Second)
	for g.Stats().Checkpoints+g.Stats().Dumps < 1 {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("experiments: checkpoint never uploaded")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := g.Close(); err != nil {
		return res, err
	}

	// Disaster: the primary is gone. Recover through the latency model.
	sim := cloudsim.New(base, cloudsim.Options{
		Profile:   opts.Profile,
		TimeScale: opts.TimeScale,
		Seed:      opts.Seed,
	})
	metered := cloud.NewMeteredStore(sim, cloud.AmazonS3May2017())
	freshFS := vfs.NewMemFS()
	g2, err := core.New(freshFS, metered, dbevent.ForEngine(opts.EngineName),
		ginjaParams(100, 1000, false, false))
	if err != nil {
		return res, err
	}
	if err := g2.Recover(ctx); err != nil {
		return res, err
	}
	defer g2.Close()
	// The DBMS must come back and complete its own crash recovery.
	db2, err := minidb.Open(g2.FS(), engine, minidb.Options{})
	if err != nil {
		return res, fmt.Errorf("experiments: DBMS restart after recovery: %w", err)
	}
	if _, err := db2.Get(tpcc.TableWarehouse, []byte(fmt.Sprintf("w:%04d", opts.Warehouses))); err != nil {
		return res, fmt.Errorf("experiments: recovered database incomplete: %w", err)
	}

	getStats := sim.GetLatencyModel()
	counts := metered.Counts()
	// Recovery downloads sequentially, so the modelled duration is the
	// sum of modelled GET latencies plus one LIST round trip.
	res.ModelledTime = getStats.Total + opts.Profile.BaseLatency
	res.BytesDownloaded = counts.BytesDown
	res.Objects = counts.Gets
	return res, nil
}

// Figure7 measures recovery time for each warehouse scale under both
// network profiles (on-premises vs in-region VM).
type Figure7Row struct {
	Warehouses    int
	OnPremises    time.Duration
	InRegionVM    time.Duration
	BytesOnPrem   int64
	ObjectsOnPrem int64
}

// Figure7 runs the recovery-time experiment at the given scales.
func Figure7(ctx context.Context, warehouses []int, workload time.Duration) ([]Figure7Row, error) {
	var rows []Figure7Row
	for _, w := range warehouses {
		wan, err := RunRecovery(ctx, RecoveryOptions{
			Warehouses:       w,
			WorkloadDuration: workload,
			Profile:          cloudsim.WANProfile(),
		})
		if err != nil {
			return nil, fmt.Errorf("figure7 W=%d on-prem: %w", w, err)
		}
		lan, err := RunRecovery(ctx, RecoveryOptions{
			Warehouses:       w,
			WorkloadDuration: workload,
			Profile:          cloudsim.LANProfile(),
		})
		if err != nil {
			return nil, fmt.Errorf("figure7 W=%d in-region: %w", w, err)
		}
		rows = append(rows, Figure7Row{
			Warehouses:    w,
			OnPremises:    wan.ModelledTime,
			InRegionVM:    lan.ModelledTime,
			BytesOnPrem:   wan.BytesDownloaded,
			ObjectsOnPrem: wan.Objects,
		})
	}
	return rows, nil
}
