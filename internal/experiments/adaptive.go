package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/costmodel"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// This file is the ablation for the adaptive batch controller: the same
// paced commit workload replayed across WAN round-trip and price regimes,
// once per fixed (B, TB) baseline and once with AdaptiveBatching solving
// the knobs online under a $/day ceiling. The claim under test is the
// controller's contract — commit latency no worse than the best fixed
// configuration an operator could have picked for that regime (within
// 10%), while never spending past the ceiling — plus the two-stage
// uploader's throughput gain over the serial seal→PUT loop.

// AdaptiveRun is one measured (workload, knob policy) configuration.
type AdaptiveRun struct {
	Adaptive bool `json:"adaptive"`
	// Batch is the configured B — the fixed knob for baselines, the
	// initial value for adaptive runs.
	Batch         int     `json:"batch"`
	Commits       int     `json:"commits"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// P50BatchMs is the median oldest-submit→durable-release latency —
	// the comparison number (the tail of a paced run is dominated by the
	// final partial batch waiting out TB, which says nothing about the
	// knobs).
	P50BatchMs float64 `json:"p50_batch_ms"`
	WALObjects int64   `json:"wal_objects"`
	// CommitsPerPut is the realized effective B of the §7.1 cost model.
	CommitsPerPut float64 `json:"commits_per_put"`
	// DollarsPerDay evaluates the costmodel at the workload's commit rate
	// with the realized CommitsPerPut; Feasible is the ≤-ceiling verdict
	// for the regime (always judged on this measured number, so a fixed
	// baseline that quietly overspends is disqualified, not compared).
	DollarsPerDay float64 `json:"dollars_per_day"`
	Feasible      bool    `json:"feasible"`
	// SteadyDollarsPerDay prices the final effective batch at the same
	// rate — where the controller would settle if the workload ran on.
	SteadyDollarsPerDay float64 `json:"steady_dollars_per_day"`
	// EffectiveBatch/EffectiveTimeoutMs/FitBaseMs expose the controller
	// state at the end of the run (= the configured knobs for baselines).
	EffectiveBatch     int     `json:"effective_batch"`
	EffectiveTimeoutMs float64 `json:"effective_timeout_ms"`
	FitBaseMs          float64 `json:"fit_base_ms"`
}

// AdaptiveRegime is one (RTT, price ceiling) cell of the sweep.
type AdaptiveRegime struct {
	RTTMs         float64 `json:"rtt_ms"`
	CeilingPerDay float64 `json:"ceiling_per_day"`
	// RatePerSec is the paced workload's commit arrival rate.
	RatePerSec float64       `json:"rate_per_sec"`
	Fixed      []AdaptiveRun `json:"fixed"`
	Adaptive   AdaptiveRun   `json:"adaptive"`
	// BestFeasibleFixedP50Ms is the best median latency among fixed
	// baselines whose measured spend fits the ceiling; 0 when no fixed
	// baseline is feasible (the controller is then the only option).
	BestFeasibleFixedP50Ms float64 `json:"best_feasible_fixed_p50_ms"`
}

// ThroughputGate is the unpaced head-to-head at 40 ms RTT: the default
// fixed knobs versus the controller, submitting as fast as the pipeline
// accepts. The verify gate requires adaptive to win on throughput at
// equal-or-lower $/day.
type ThroughputGate struct {
	FixedDefault AdaptiveRun `json:"fixed_default"`
	Adaptive     AdaptiveRun `json:"adaptive"`
	// Speedup is adaptive/fixed commits-per-second.
	Speedup float64 `json:"speedup"`
}

// PipelinedAblation isolates the two-stage uploader: the identical
// workload against a constant-latency store with sealing costed on the
// real clock (virtual time cannot see CPU work), serial seal→PUT versus
// seal of batch N+1 overlapping the PUT of batch N.
type PipelinedAblation struct {
	RTTMs                  float64 `json:"rtt_ms"`
	SerialCommitsPerSec    float64 `json:"serial_commits_per_sec"`
	PipelinedCommitsPerSec float64 `json:"pipelined_commits_per_sec"`
	Speedup                float64 `json:"speedup"`
}

// adaptiveRunOpts parameterizes one measureAdaptive call.
type adaptiveRunOpts struct {
	rtt          time.Duration
	ceiling      float64
	commits      int
	payloadBytes int
	batch        int
	batchTimeout time.Duration
	pace         time.Duration // 0 = submit as fast as the pipeline accepts
	adaptive     bool
}

// fineLatencyBounds returns commit-latency histogram buckets fine enough
// for a meaningful p50 (5 ms steps to 1 s, 25 ms steps to 5 s). The
// registry's first registration wins, so registering these before
// core.New overrides the default coarse buckets.
func fineLatencyBounds() []float64 {
	var b []float64
	for v := 0.005; v < 1.0; v += 0.005 {
		b = append(b, v)
	}
	for v := 1.0; v <= 5.0; v += 0.025 {
		b = append(b, v)
	}
	return b
}

// adaptiveDollarsPerDay prices the paper's evaluation deployment at the
// given commit rate with the given effective batch.
func adaptiveDollarsPerDay(ratePerSec, effectiveBatch float64) float64 {
	if effectiveBatch < 1 {
		effectiveBatch = 1
	}
	dep := costmodel.PaperEvaluationDeployment()
	dep.UpdatesPerMinute = ratePerSec * 60
	dep.Batch = effectiveBatch
	return costmodel.Monthly(dep, cloud.AmazonS3May2017()).Total() / 30
}

// measureAdaptive drives the paced (or unpaced) commit workload through
// the full stack on the simulated WAN and reports latency, throughput,
// realized PUT packing and the resulting spend.
func measureAdaptive(o adaptiveRunOpts) (AdaptiveRun, error) {
	run := AdaptiveRun{Adaptive: o.adaptive, Batch: o.batch, Commits: o.commits}
	clk := simclock.NewSim()
	stopPump := clk.Pump()
	defer stopPump()

	store := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
		Profile: cloudsim.Profile{
			BaseLatency:       o.rtt,
			UploadBandwidth:   8e6,
			DownloadBandwidth: 30e6,
		},
		Clock: clk,
		Seed:  1,
	})
	reg := obs.NewRegistry()
	// Register the commit-latency histogram with fine buckets before
	// core.New so the p50 below is not quantized by the default bounds.
	batchLatency := reg.Histogram("ginja_commit_batch_seconds",
		"End-to-end commit batch latency: oldest submit to durable release.", nil, fineLatencyBounds())

	params := core.DefaultParams()
	params.Clock = clk
	params.Batch = o.batch
	params.Safety = 1024
	params.BatchTimeout = o.batchTimeout
	params.SafetyTimeout = 2 * time.Minute
	params.RetryBaseDelay = 20 * time.Millisecond
	params.AdaptiveBatching = o.adaptive
	params.CostCeilingPerDay = o.ceiling
	params.Metrics = reg

	ctx := context.Background()
	g, err := core.New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		return run, err
	}
	if err := g.Boot(ctx); err != nil {
		return run, fmt.Errorf("boot: %w", err)
	}
	fsys := g.FS()
	payload := make([]byte, o.payloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	t0 := clk.Now()
	for i := 0; i < o.commits; i++ {
		off := int64(i%4096) * 8192
		if err := vfs.WriteAt(fsys, "pg_xlog/000000010000000000000001", off, payload); err != nil {
			return run, fmt.Errorf("commit %d: %w", i, err)
		}
		if o.pace > 0 {
			clk.Sleep(o.pace)
		}
	}
	if !g.Flush(10 * time.Minute) {
		return run, fmt.Errorf("flush did not drain")
	}
	elapsed := clk.Since(t0)
	if elapsed > 0 {
		run.CommitsPerSec = float64(o.commits) / elapsed.Seconds()
	}
	run.P50BatchMs = batchLatency.Quantile(0.50) * 1000

	stats := g.Stats()
	run.WALObjects = stats.WALObjectsUploaded
	if run.WALObjects > 0 {
		run.CommitsPerPut = float64(o.commits) / float64(run.WALObjects)
	}
	run.EffectiveBatch = stats.EffectiveBatch
	run.EffectiveTimeoutMs = float64(stats.EffectiveBatchTimeout) / float64(time.Millisecond)
	run.FitBaseMs = float64(stats.FittedPutLatency) / float64(time.Millisecond)

	// Spend is judged at the workload's arrival rate: the paced rate when
	// one was imposed, the measured rate otherwise.
	rate := run.CommitsPerSec
	if o.pace > 0 {
		rate = float64(time.Second) / float64(o.pace)
	}
	run.DollarsPerDay = adaptiveDollarsPerDay(rate, run.CommitsPerPut)
	run.SteadyDollarsPerDay = adaptiveDollarsPerDay(rate, float64(run.EffectiveBatch))
	run.Feasible = o.ceiling == 0 || run.DollarsPerDay <= o.ceiling

	if err := g.Close(); err != nil {
		return run, fmt.Errorf("close: %w", err)
	}
	return run, nil
}

// runAdaptiveRegimes sweeps the paced workload across RTT and price
// regimes. The fixed baselines use a deliberately long TB so their
// batches fill (a short TB would cut partial batches and make B
// irrelevant under pacing); the adaptive run starts from the default B
// with the same TB as its worst-case cap.
func runAdaptiveRegimes(commits int) ([]AdaptiveRegime, error) {
	const (
		pace    = 5 * time.Millisecond // 200 commits/s
		payload = 256
		capTB   = 10 * time.Second
	)
	fixedBatches := []int{8, 32, 128}
	cells := []struct {
		rtt     time.Duration
		ceiling float64
	}{
		{5 * time.Millisecond, 0.8},   // LAN-like object store
		{40 * time.Millisecond, 0.8},  // the paper's S3 WAN
		{150 * time.Millisecond, 0.8}, // cross-continent
		{40 * time.Millisecond, 0.25}, // tight budget: cost floor binds hard
		{40 * time.Millisecond, 2.0},  // loose budget: latency term decides
	}
	var regimes []AdaptiveRegime
	for _, cell := range cells {
		reg := AdaptiveRegime{
			RTTMs:         float64(cell.rtt) / float64(time.Millisecond),
			CeilingPerDay: cell.ceiling,
			RatePerSec:    float64(time.Second) / float64(pace),
		}
		for _, b := range fixedBatches {
			run, err := measureAdaptive(adaptiveRunOpts{
				rtt: cell.rtt, ceiling: cell.ceiling, commits: commits,
				payloadBytes: payload, batch: b, batchTimeout: capTB, pace: pace,
			})
			if err != nil {
				return nil, fmt.Errorf("fixed B=%d rtt=%v: %w", b, cell.rtt, err)
			}
			reg.Fixed = append(reg.Fixed, run)
			if run.Feasible && (reg.BestFeasibleFixedP50Ms == 0 || run.P50BatchMs < reg.BestFeasibleFixedP50Ms) {
				reg.BestFeasibleFixedP50Ms = run.P50BatchMs
			}
		}
		adaptive, err := measureAdaptive(adaptiveRunOpts{
			rtt: cell.rtt, ceiling: cell.ceiling, commits: commits,
			payloadBytes: payload, batch: core.DefaultParams().Batch,
			batchTimeout: capTB, pace: pace, adaptive: true,
		})
		if err != nil {
			return nil, fmt.Errorf("adaptive rtt=%v ceiling=%.2f: %w", cell.rtt, cell.ceiling, err)
		}
		reg.Adaptive = adaptive
		regimes = append(regimes, reg)
	}
	return regimes, nil
}

// runThroughputGate measures the unpaced head-to-head the verify gate
// enforces: controller versus default fixed knobs at 40 ms RTT. The
// unpaced workload runs four orders of magnitude hotter than the paper's
// 100 updates/min, so the ceiling scales with it ($20/day ≈ the paper's
// per-update spend at this rate); what matters is that a ceiling is in
// force and the controller still beats the default knobs under it. A
// one-dollar ceiling at this rate would force B past Safety, clamp to
// S and bound the whole queue to one batch in flight — the controller
// honouring the Safety contract, not a throughput result.
func runThroughputGate(commits int) (ThroughputGate, error) {
	var gate ThroughputGate
	const rtt = 40 * time.Millisecond
	fixed, err := measureAdaptive(adaptiveRunOpts{
		rtt: rtt, commits: commits, payloadBytes: 256,
		batch: core.DefaultParams().Batch, batchTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		return gate, fmt.Errorf("fixed-default: %w", err)
	}
	adaptive, err := measureAdaptive(adaptiveRunOpts{
		rtt: rtt, ceiling: 20.0, commits: commits, payloadBytes: 256,
		batch: core.DefaultParams().Batch, batchTimeout: 50 * time.Millisecond,
		adaptive: true,
	})
	if err != nil {
		return gate, fmt.Errorf("adaptive: %w", err)
	}
	gate.FixedDefault = fixed
	gate.Adaptive = adaptive
	if fixed.CommitsPerSec > 0 {
		gate.Speedup = adaptive.CommitsPerSec / fixed.CommitsPerSec
	}
	return gate, nil
}

// fixedLatencyStore adds a constant real-clock delay to every Put — the
// WAN stand-in for the pipelined ablation, which must run on the real
// clock because sealing (the stage being overlapped) costs CPU time that
// virtual time cannot see.
type fixedLatencyStore struct {
	cloud.ObjectStore
	delay time.Duration
}

func (s *fixedLatencyStore) Put(ctx context.Context, name string, data []byte) error {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return ctx.Err()
	}
	return s.ObjectStore.Put(ctx, name, data)
}

// runPipelinedAblation measures serial versus two-stage upload: with
// Compress on, sealing a 4 MiB low-entropy batch costs real CPU
// milliseconds comparable to a cross-region 100 ms PUT, so overlapping
// the two shows up as wall-clock throughput (the overlap is largest when
// the stages are balanced; at the paper's 40 ms the win shrinks but the
// mechanism is identical). Each mode takes the best of five trials: on
// a loaded machine scheduling noise only ever subtracts throughput, so
// the per-mode maximum is the stable estimate of what the mode can do
// (single trials swing the serial baseline by more than the gate's
// margin, so too few trials make the 1.15x gate flake).
func runPipelinedAblation(commits int) (PipelinedAblation, error) {
	const rtt = 100 * time.Millisecond
	res := PipelinedAblation{RTTMs: float64(rtt) / float64(time.Millisecond)}
	// One 64 KiB low-entropy payload, filled once: per-commit content
	// barely varies (an 8-byte stamp), but zlib's 32 KiB window cannot
	// reach the identical block 64 KiB back, so every batch still costs
	// the sealer full match-search time (~70 ms per 4 MiB batch here —
	// comparable to the PUT) while the producer loop stays cheap enough
	// to hide under the PUT sleep in both modes.
	payload := make([]byte, 64<<10)
	rnd := uint32(2463534242)
	for j := range payload {
		rnd = rnd*1664525 + 1013904223
		payload[j] = byte(rnd>>24) & 0x0f
	}
	measure := func(disablePipelining bool) (float64, error) {
		params := core.DefaultParams()
		params.Batch = 64
		params.Safety = 256
		params.BatchTimeout = 5 * time.Second
		params.Compress = true
		params.Uploaders = 1        // isolate the seal/PUT overlap from pool parallelism
		params.DumpThreshold = 1e12 // no background dumps mid-measurement
		params.DisablePipelining = disablePipelining
		g, err := core.New(vfs.NewMemFS(), &fixedLatencyStore{ObjectStore: cloud.NewMemStore(), delay: rtt},
			dbevent.NewPGProcessor(), params)
		if err != nil {
			return 0, err
		}
		if err := g.Boot(context.Background()); err != nil {
			return 0, err
		}
		defer g.Close()
		fsys := g.FS()
		t0 := time.Now()
		for i := 0; i < commits; i++ {
			binary.LittleEndian.PutUint64(payload, uint64(i))
			off := int64(i%256) * int64(len(payload))
			if err := vfs.WriteAt(fsys, "pg_xlog/000000010000000000000001", off, payload); err != nil {
				return 0, fmt.Errorf("commit %d: %w", i, err)
			}
		}
		if !g.Flush(5 * time.Minute) {
			return 0, fmt.Errorf("flush did not drain")
		}
		elapsed := time.Since(t0)
		if elapsed <= 0 {
			return 0, fmt.Errorf("no elapsed time")
		}
		return float64(commits) / elapsed.Seconds(), nil
	}
	bestOf := func(disablePipelining bool) (float64, error) {
		var best float64
		for trial := 0; trial < 5; trial++ {
			v, err := measure(disablePipelining)
			if err != nil {
				return 0, err
			}
			if v > best {
				best = v
			}
		}
		return best, nil
	}
	var err error
	if res.SerialCommitsPerSec, err = bestOf(true); err != nil {
		return res, fmt.Errorf("serial: %w", err)
	}
	if res.PipelinedCommitsPerSec, err = bestOf(false); err != nil {
		return res, fmt.Errorf("pipelined: %w", err)
	}
	if res.SerialCommitsPerSec > 0 {
		res.Speedup = res.PipelinedCommitsPerSec / res.SerialCommitsPerSec
	}
	return res, nil
}
