package experiments

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/costmodel"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// This file measures the commit path — the pipeline that every database
// update crosses — before and after WAL batch packing. The workload is
// the paper's worst case for request-count billing: B small commits
// scattered across WAL offsets, each of which used to become its own
// sealed object and its own ~40 ms PUT. With packing the whole batch
// rides one object, so both the virtual-time throughput and the
// costmodel's CWAL_PUT term improve by the measured commits-per-PUT
// factor. Everything latency-shaped runs on the simulated WAN in virtual
// time (deterministic, machine-independent); only the allocation profile
// is measured on the real clock, where the runtime's counters live.

// CommitpathOptions configures the packed-vs-unpacked measurement.
type CommitpathOptions struct {
	// Commits is how many small updates the workload submits.
	Commits int
	// Batch is Ginja's B (Safety is fixed at 2×B so throughput is bound
	// by upload round trips, not by an over-generous queue).
	Batch int
	// PayloadBytes sizes each commit's WAL write.
	PayloadBytes int
	// AdaptiveCommits sizes the paced adaptive-vs-fixed regime sweep.
	// The default is divisible by every fixed baseline B so those runs
	// end on whole batches.
	AdaptiveCommits int
	// ThroughputCommits sizes the unpaced adaptive-vs-default gate.
	ThroughputCommits int
	// PipelineCommits sizes the real-clock pipelined-uploader ablation.
	PipelineCommits int
}

func (o CommitpathOptions) withDefaults() CommitpathOptions {
	if o.Commits == 0 {
		o.Commits = 600
	}
	if o.Batch == 0 {
		o.Batch = 50
	}
	if o.PayloadBytes == 0 {
		o.PayloadBytes = 256
	}
	if o.AdaptiveCommits == 0 {
		o.AdaptiveCommits = 1664 // 13 batches of 128, 52 of 32, 208 of 8
	}
	if o.ThroughputCommits == 0 {
		o.ThroughputCommits = 16384
	}
	if o.PipelineCommits == 0 {
		o.PipelineCommits = 768
	}
	return o
}

// CommitpathRun is one measured configuration.
type CommitpathRun struct {
	Packing bool `json:"packing"`
	Commits int  `json:"commits"`
	// VirtualMs is the virtual time from the first submit until every
	// commit was durable in the simulated cloud.
	VirtualMs float64 `json:"virtual_ms"`
	// CommitsPerSec is commit throughput in virtual time.
	CommitsPerSec float64 `json:"commits_per_sec"`
	// P50BatchMs/P99BatchMs are commit-batch latency quantiles: oldest
	// submit → durable release (the paper's user-visible commit delay).
	P50BatchMs float64 `json:"p50_batch_ms"`
	P99BatchMs float64 `json:"p99_batch_ms"`
	// Batches and WALObjects come from Stats; PutsPerBatch is their ratio
	// (the acceptance number: ≤ ceil(batch bytes / MaxObjectSize) packed).
	Batches      int64   `json:"batches"`
	WALObjects   int64   `json:"wal_objects"`
	PutsPerBatch float64 `json:"puts_per_batch"`
	// CommitsPerPut is the effective B of the §7.1 cost model: how many
	// updates share one billable PUT.
	CommitsPerPut float64 `json:"commits_per_put"`
	// DollarsPerDay evaluates the costmodel for the paper's evaluation
	// deployment with the measured CommitsPerPut as the effective batch.
	DollarsPerDay float64 `json:"dollars_per_day"`
}

// CommitpathResult is the machine-readable content of
// BENCH_commitpath.json.
type CommitpathResult struct {
	Unpacked CommitpathRun `json:"unpacked"`
	Packed   CommitpathRun `json:"packed"`
	// ThroughputSpeedup is packed/unpacked commits-per-second.
	ThroughputSpeedup float64 `json:"throughput_speedup"`
	// PutReduction is unpacked/packed PUTs for the same workload.
	PutReduction float64 `json:"put_reduction"`
	// AllocsPerCommit is the steady-state submit→upload allocation count
	// per commit on the packed hot path (pooled submit copies, reused
	// batch scratch, pooled object write lists), measured with the
	// runtime's allocation counters against an in-memory store.
	AllocsPerCommit float64 `json:"allocs_per_commit"`
	// AdaptiveRegimes is the paced adaptive-vs-fixed sweep across WAN
	// round-trip and price-ceiling regimes.
	AdaptiveRegimes []AdaptiveRegime `json:"adaptive_regimes"`
	// AdaptiveThroughput is the unpaced controller-vs-default gate.
	AdaptiveThroughput ThroughputGate `json:"adaptive_throughput"`
	// Pipelined is the two-stage-uploader ablation on the real clock.
	Pipelined PipelinedAblation `json:"pipelined_ablation"`
}

// measureCommitpath drives Commits small scattered writes through the
// full stack (intercepted FS → pipeline → simulated WAN) and reports
// throughput, latency quantiles and PUT accounting.
func measureCommitpath(opts CommitpathOptions, packing bool) (CommitpathRun, error) {
	run := CommitpathRun{Packing: packing, Commits: opts.Commits}
	clk := simclock.NewSim()
	stopPump := clk.Pump()
	defer stopPump()

	store := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
		Profile: datapathProfile(), // 40 ms RTT, jitter-free
		Clock:   clk,
		Seed:    1,
	})
	reg := obs.NewRegistry()

	params := core.DefaultParams()
	params.Clock = clk
	params.Batch = opts.Batch
	params.Safety = 2 * opts.Batch
	params.BatchTimeout = 50 * time.Millisecond
	params.SafetyTimeout = 2 * time.Minute
	params.RetryBaseDelay = 20 * time.Millisecond
	params.DisablePacking = !packing
	params.Metrics = reg

	ctx := context.Background()
	g, err := core.New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		return run, err
	}
	if err := g.Boot(ctx); err != nil {
		return run, fmt.Errorf("boot: %w", err)
	}
	fsys := g.FS()
	payload := make([]byte, opts.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	t0 := clk.Now()
	for i := 0; i < opts.Commits; i++ {
		// Scattered offsets: aggregation cannot coalesce, so each commit
		// is its own write-run — the case packing exists for.
		off := int64(i%4096) * 8192
		if err := vfs.WriteAt(fsys, "pg_xlog/000000010000000000000001", off, payload); err != nil {
			return run, fmt.Errorf("commit %d: %w", i, err)
		}
	}
	if !g.Flush(10 * time.Minute) {
		return run, fmt.Errorf("flush did not drain")
	}
	elapsed := clk.Since(t0)
	run.VirtualMs = float64(elapsed) / float64(time.Millisecond)
	if elapsed > 0 {
		run.CommitsPerSec = float64(opts.Commits) / elapsed.Seconds()
	}

	stats := g.Stats()
	run.Batches = stats.Batches
	run.WALObjects = stats.WALObjectsUploaded
	if run.Batches > 0 {
		run.PutsPerBatch = float64(run.WALObjects) / float64(run.Batches)
	}
	if run.WALObjects > 0 {
		run.CommitsPerPut = float64(opts.Commits) / float64(run.WALObjects)
	}
	batchLatency := reg.Histogram("ginja_commit_batch_seconds",
		"End-to-end commit batch latency: oldest submit to durable release.", nil, nil)
	run.P50BatchMs = batchLatency.Quantile(0.50) * 1000
	run.P99BatchMs = batchLatency.Quantile(0.99) * 1000

	// The §7.1 cost model with the measured effective batch: CWAL_PUT is
	// the term packing attacks (W × month / B_effective × CPUT).
	dep := costmodel.PaperEvaluationDeployment()
	dep.Batch = run.CommitsPerPut
	if dep.Batch < 1 {
		dep.Batch = 1
	}
	run.DollarsPerDay = costmodel.Monthly(dep, cloud.AmazonS3May2017()).Total() / 30

	if err := g.Close(); err != nil {
		return run, fmt.Errorf("close: %w", err)
	}
	return run, nil
}

// commitAllocProfile measures steady-state allocations per commit on the
// packed hot path using the runtime's counters (works outside `go test`;
// BenchmarkCommitPath is the in-harness twin). It runs on the real clock
// against an in-memory store so nothing but the commit path allocates.
func commitAllocProfile(opts CommitpathOptions) (float64, error) {
	params := core.DefaultParams()
	params.Batch = opts.Batch
	params.Safety = 20 * opts.Batch
	params.BatchTimeout = 5 * time.Millisecond
	g, err := core.New(vfs.NewMemFS(), cloud.NewMemStore(), dbevent.NewPGProcessor(), params)
	if err != nil {
		return 0, err
	}
	if err := g.Boot(context.Background()); err != nil {
		return 0, err
	}
	defer g.Close()
	fsys := g.FS()
	payload := make([]byte, opts.PayloadBytes)
	// Hold one open WAL segment and pre-extend it, as a DBMS does: the
	// measured loop then crosses only interception → classify → submit →
	// pipeline, not per-call open/close or file growth.
	const segment = "pg_xlog/000000010000000000000001"
	if err := fsys.MkdirAll("pg_xlog", 0o755); err != nil {
		return 0, err
	}
	f, err := fsys.OpenFile(segment, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	commit := func(i int) error {
		_, err := f.WriteAt(payload, int64(i%512)*8192)
		return err
	}
	if err := commit(512); err != nil { // pre-extend past the highest offset
		return 0, err
	}
	for i := 0; i < 500; i++ { // warm the pools and grow the scratch
		if err := commit(i); err != nil {
			return 0, err
		}
	}
	if !g.Flush(30 * time.Second) {
		return 0, fmt.Errorf("warm-up flush did not drain")
	}
	const iters = 4000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if err := commit(i); err != nil {
			return 0, err
		}
	}
	if !g.Flush(30 * time.Second) {
		return 0, fmt.Errorf("flush did not drain")
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / iters, nil
}

// RunCommitpath measures the unpacked baseline and the packed commit path
// on identical deterministic scenarios and reports the speedups.
func RunCommitpath(opts CommitpathOptions) (*CommitpathResult, error) {
	opts = opts.withDefaults()
	unpacked, err := measureCommitpath(opts, false)
	if err != nil {
		return nil, fmt.Errorf("unpacked run: %w", err)
	}
	packed, err := measureCommitpath(opts, true)
	if err != nil {
		return nil, fmt.Errorf("packed run: %w", err)
	}
	res := &CommitpathResult{Unpacked: unpacked, Packed: packed}
	if unpacked.CommitsPerSec > 0 {
		res.ThroughputSpeedup = packed.CommitsPerSec / unpacked.CommitsPerSec
	}
	if packed.WALObjects > 0 {
		res.PutReduction = float64(unpacked.WALObjects) / float64(packed.WALObjects)
	}
	res.AllocsPerCommit, err = commitAllocProfile(opts)
	if err != nil {
		return nil, err
	}
	if res.AdaptiveRegimes, err = runAdaptiveRegimes(opts.AdaptiveCommits); err != nil {
		return nil, fmt.Errorf("adaptive regimes: %w", err)
	}
	if res.AdaptiveThroughput, err = runThroughputGate(opts.ThroughputCommits); err != nil {
		return nil, fmt.Errorf("adaptive throughput gate: %w", err)
	}
	if res.Pipelined, err = runPipelinedAblation(opts.PipelineCommits); err != nil {
		return nil, fmt.Errorf("pipelined ablation: %w", err)
	}
	return res, nil
}
