package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/ginja-dr/ginja/internal/sim"
)

// This file measures RPO and RTO — the two quantities Ginja exists to
// bound — instead of deriving them offline from bench math. Each scenario
// replays a deterministic sim fault schedule under the virtual clock: the
// full stack (minidb on the intercepted FS, commit pipeline, checkpointer,
// latency-modelled cloud) runs to a scripted disaster, the primary is cut
// off mid-flight, and a replacement site recovers. The measured data-loss
// window at the instant of the crash (RPO) and the phased recovery time
// (RTO) aggregate across seeds into BENCH_recovery.json. Every run also
// re-checks the consistent-prefix invariant, so the bench doubles as a
// correctness sweep.

// RecoveryBenchOptions configures the RPO/RTO measurement.
type RecoveryBenchOptions struct {
	// Seeds is how many deterministic runs each scenario aggregates.
	Seeds int
}

func (o RecoveryBenchOptions) withDefaults() RecoveryBenchOptions {
	if o.Seeds == 0 {
		o.Seeds = 8
	}
	return o
}

// recoveryScenario is one scripted fault schedule, replayed across seeds.
type recoveryScenario struct {
	name string
	desc string
	cfg  func(seed int64) sim.Config
}

// scenarios returns the three deterministic fault schedules the bench
// replays: a crash with a packed batch mid-flight, a crash while a cloud
// outage has the commit queue backed up, and a crash cutting a multi-part
// dump upload short.
func scenarios() []recoveryScenario {
	return []recoveryScenario{
		{
			name: "crash-mid-batch",
			desc: "primary dies mid-workload with packed WAL batches in flight; no cloud faults",
			cfg: func(seed int64) sim.Config {
				return sim.Config{Seed: seed, Schedule: &sim.Schedule{
					Seed: seed, Steps: 48, CrashAfterStep: 24,
				}}
			},
		},
		{
			name: "outage-crash",
			desc: "cloud outage backs the commit queue up, then the primary dies",
			cfg: func(seed int64) sim.Config {
				return sim.Config{Seed: seed, Schedule: &sim.Schedule{
					Seed: seed, Steps: 48, CrashAfterStep: 30,
					Events: []sim.Event{
						{At: 1 * time.Second, Kind: sim.OutageStart},
						{At: 9 * time.Second, Kind: sim.OutageEnd},
					},
				}}
			},
		},
		{
			name: "crash-during-dump",
			desc: "primary dies with a multi-part dump upload in flight (stranded parts pruned on recovery)",
			cfg: func(seed int64) sim.Config {
				return sim.Config{Seed: seed, Schedule: &sim.Schedule{
					Seed: seed, Steps: 40, CrashAfterStep: 40,
				}, CrashDuringCheckpoint: true}
			},
		},
	}
}

// RecoveryPhaseMs is the mean per-phase RTO budget across a scenario's
// runs, in virtual milliseconds. Fetch is cumulative across the parallel
// prefetchers, so it can exceed Total.
type RecoveryPhaseMs struct {
	List   float64 `json:"list_ms"`
	View   float64 `json:"view_ms"`
	Fetch  float64 `json:"fetch_ms"`
	Decode float64 `json:"decode_ms"`
	Apply  float64 `json:"apply_ms"`
	Verify float64 `json:"verify_ms"`
	Total  float64 `json:"total_ms"`
}

// RecoveryBenchScenario aggregates one fault schedule across seeds.
type RecoveryBenchScenario struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Runs        int    `json:"runs"`
	// RPO quantiles: the measured data-loss window (age of the oldest
	// unacknowledged update, virtual clock) at the instant of the crash.
	RPOp50Ms float64 `json:"rpo_p50_ms"`
	RPOp99Ms float64 `json:"rpo_p99_ms"`
	RPOMaxMs float64 `json:"rpo_max_ms"`
	// RTO quantiles: the replacement site's Recover duration.
	RTOp50Ms float64 `json:"rto_p50_ms"`
	RTOp99Ms float64 `json:"rto_p99_ms"`
	// Phases is the mean per-phase RTO budget.
	Phases RecoveryPhaseMs `json:"phases"`
	// Mean restore-plan shape: cloud objects fetched (DB parts + WAL),
	// the WAL portion, and sealed bytes downloaded.
	MeanObjects    float64 `json:"mean_objects"`
	MeanWALObjects float64 `json:"mean_wal_objects"`
	MeanFetchedKB  float64 `json:"mean_fetched_kb"`
	// MeanCommitsLost is how many committed updates the recovered prefix
	// lost on average (commits − (cut+1)); the paper bounds this by S.
	MeanCommitsLost float64 `json:"mean_commits_lost"`
	// MaxSafety is the largest seed-drawn S among the runs, the bound
	// MeanCommitsLost must respect.
	MaxSafety int `json:"max_safety"`
}

// WarmStandbyBench compares cold disaster recovery against promoting a
// warm standby on the same seeds and workload: the database carries
// FillerRows of untracked bulk so cold recovery pays O(database size)
// while Promote pays O(replication lag). The outage drill (promote
// starting against a dark provider and riding it out) is reported but
// excluded from the speedup, which compares healthy-provider handoffs.
type WarmStandbyBench struct {
	Runs       int `json:"runs"`
	FillerRows int `json:"filler_rows"`
	// Cold vs warm RTO quantiles over the same seeds.
	ColdRTOp50Ms float64 `json:"cold_rto_p50_ms"`
	ColdRTOp99Ms float64 `json:"cold_rto_p99_ms"`
	WarmRTOp50Ms float64 `json:"warm_rto_p50_ms"`
	WarmRTOp99Ms float64 `json:"warm_rto_p99_ms"`
	// Speedup is cold p50 / warm p50 — the warm-standby payoff.
	Speedup float64 `json:"speedup"`
	// MeanFollowerLagMs is the standby's mean replication lag at the
	// instant of the crash; MeanColdObjects / MeanWarmObjects are the mean
	// cloud objects each path fetched during recovery.
	MeanFollowerLagMs float64 `json:"mean_follower_lag_ms"`
	MeanColdObjects   float64 `json:"mean_cold_objects"`
	MeanWarmObjects   float64 `json:"mean_warm_objects"`
	// OutageDrillRTOMs is one promote-during-outage run: the handoff rides
	// a one-virtual-second provider outage out under the retry policy.
	OutageDrillRTOMs float64 `json:"outage_drill_rto_ms"`
}

// RecoveryBenchResult is the machine-readable content of BENCH_recovery.json.
type RecoveryBenchResult struct {
	Seeds       int                     `json:"seeds"`
	Scenarios   []RecoveryBenchScenario `json:"scenarios"`
	WarmStandby *WarmStandbyBench       `json:"warm_standby"`
}

// quantileMs picks an exact sample quantile (nearest-rank on the sorted
// slice) and renders it in milliseconds.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// RunRecovery replays every scenario across opts.Seeds deterministic
// seeds and aggregates the measured RPO/RTO distributions.
func RunRecoveryBench(opts RecoveryBenchOptions) (*RecoveryBenchResult, error) {
	opts = opts.withDefaults()
	res := &RecoveryBenchResult{Seeds: opts.Seeds}
	for _, sc := range scenarios() {
		agg := RecoveryBenchScenario{Name: sc.name, Description: sc.desc}
		var (
			rpos, rtos []time.Duration
			ph         RecoveryPhaseMs
			lost       float64
		)
		for seed := int64(1); seed <= int64(opts.Seeds); seed++ {
			r, err := sim.Run(sc.cfg(seed))
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", sc.name, seed, err)
			}
			if r.Recovery == nil {
				return nil, fmt.Errorf("%s seed %d: recovery produced no breakdown", sc.name, seed)
			}
			agg.Runs++
			rpos = append(rpos, r.RPO)
			rtos = append(rtos, r.RTO)
			bd := r.Recovery
			ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
			ph.List += ms(bd.List)
			ph.View += ms(bd.ViewBuild)
			ph.Fetch += ms(bd.Fetch)
			ph.Decode += ms(bd.Decode)
			ph.Apply += ms(bd.Apply)
			ph.Verify += ms(bd.Verify)
			ph.Total += ms(bd.Total)
			agg.MeanObjects += float64(bd.Objects)
			agg.MeanWALObjects += float64(bd.WALObjects)
			agg.MeanFetchedKB += float64(bd.Bytes) / 1024
			lost += float64(r.Commits - (r.Cut + 1))
			if r.Safety > agg.MaxSafety {
				agg.MaxSafety = r.Safety
			}
		}
		n := float64(agg.Runs)
		ph.List /= n
		ph.View /= n
		ph.Fetch /= n
		ph.Decode /= n
		ph.Apply /= n
		ph.Verify /= n
		ph.Total /= n
		agg.Phases = ph
		agg.MeanObjects /= n
		agg.MeanWALObjects /= n
		agg.MeanFetchedKB /= n
		agg.MeanCommitsLost = lost / n
		sort.Slice(rpos, func(i, j int) bool { return rpos[i] < rpos[j] })
		sort.Slice(rtos, func(i, j int) bool { return rtos[i] < rtos[j] })
		agg.RPOp50Ms = quantileMs(rpos, 0.50)
		agg.RPOp99Ms = quantileMs(rpos, 0.99)
		agg.RPOMaxMs = quantileMs(rpos, 1.0)
		agg.RTOp50Ms = quantileMs(rtos, 0.50)
		agg.RTOp99Ms = quantileMs(rtos, 0.99)
		res.Scenarios = append(res.Scenarios, agg)
	}
	warm, err := runWarmStandby(opts)
	if err != nil {
		return nil, err
	}
	res.WarmStandby = warm
	return res, nil
}

// runWarmStandby replays the same seeded crash twice per seed — once
// recovering cold on a fresh machine, once promoting a warm standby that
// tailed the bucket all along — over a database padded with filler bulk.
func runWarmStandby(opts RecoveryBenchOptions) (*WarmStandbyBench, error) {
	const fillerRows = 600
	w := &WarmStandbyBench{FillerRows: fillerRows}
	var coldRTOs, warmRTOs []time.Duration
	for seed := int64(1); seed <= int64(opts.Seeds); seed++ {
		cold, err := sim.Run(sim.Config{Seed: seed, FillerRows: fillerRows})
		if err != nil {
			return nil, fmt.Errorf("warm-standby cold seed %d: %w", seed, err)
		}
		warm, err := sim.Run(sim.Config{Seed: seed, FillerRows: fillerRows, Follower: true})
		if err != nil {
			return nil, fmt.Errorf("warm-standby warm seed %d: %w", seed, err)
		}
		if !warm.Promoted || warm.Recovery == nil || cold.Recovery == nil {
			return nil, fmt.Errorf("warm-standby seed %d: promoted=%v", seed, warm.Promoted)
		}
		w.Runs++
		coldRTOs = append(coldRTOs, cold.RTO)
		warmRTOs = append(warmRTOs, warm.RTO)
		w.MeanFollowerLagMs += float64(warm.FollowerLag) / float64(time.Millisecond)
		w.MeanColdObjects += float64(cold.Recovery.Objects)
		w.MeanWarmObjects += float64(warm.Recovery.Objects)
	}
	n := float64(w.Runs)
	w.MeanFollowerLagMs /= n
	w.MeanColdObjects /= n
	w.MeanWarmObjects /= n
	sort.Slice(coldRTOs, func(i, j int) bool { return coldRTOs[i] < coldRTOs[j] })
	sort.Slice(warmRTOs, func(i, j int) bool { return warmRTOs[i] < warmRTOs[j] })
	w.ColdRTOp50Ms = quantileMs(coldRTOs, 0.50)
	w.ColdRTOp99Ms = quantileMs(coldRTOs, 0.99)
	w.WarmRTOp50Ms = quantileMs(warmRTOs, 0.50)
	w.WarmRTOp99Ms = quantileMs(warmRTOs, 0.99)
	if w.WarmRTOp50Ms > 0 {
		w.Speedup = w.ColdRTOp50Ms / w.WarmRTOp50Ms
	}
	outage, err := sim.Run(sim.Config{Seed: 57, FillerRows: fillerRows, Follower: true, PromoteDuringOutage: true})
	if err != nil {
		return nil, fmt.Errorf("promote-during-outage drill: %w", err)
	}
	w.OutageDrillRTOMs = float64(outage.RTO) / float64(time.Millisecond)
	return w, nil
}
