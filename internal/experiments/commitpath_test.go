package experiments

import "testing"

// The acceptance bar for WAL batch packing: for a B=50 small-write
// workload on the simulated 40 ms-RTT store, the packed commit path must
// issue ≤ ceil(batch bytes / MaxObjectSize) PUTs per batch (one, here),
// deliver ≥ 2× commit throughput, cost less per day in the §7.1 model,
// and keep the steady-state submit→upload path at ≤ 2 allocs per commit.
func TestCommitpathPackingSpeedup(t *testing.T) {
	res, err := RunCommitpath(CommitpathOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unpacked: %.0f commits/s, %.1f PUTs/batch, p50 %.0fms p99 %.0fms, $%.3f/day",
		res.Unpacked.CommitsPerSec, res.Unpacked.PutsPerBatch,
		res.Unpacked.P50BatchMs, res.Unpacked.P99BatchMs, res.Unpacked.DollarsPerDay)
	t.Logf("packed:   %.0f commits/s, %.1f PUTs/batch, p50 %.0fms p99 %.0fms, $%.3f/day",
		res.Packed.CommitsPerSec, res.Packed.PutsPerBatch,
		res.Packed.P50BatchMs, res.Packed.P99BatchMs, res.Packed.DollarsPerDay)
	t.Logf("throughput speedup %.2fx, PUT reduction %.1fx, %.2f allocs/commit",
		res.ThroughputSpeedup, res.PutReduction, res.AllocsPerCommit)

	// 50 × 256 B ≪ MaxObjectSize: a full batch must ride a single PUT.
	if res.Packed.PutsPerBatch > 1.01 {
		t.Errorf("packed PUTs/batch = %.2f, want ≤ 1 for this workload", res.Packed.PutsPerBatch)
	}
	if res.Unpacked.PutsPerBatch < 10 {
		t.Errorf("unpacked PUTs/batch = %.2f; the baseline no longer exercises the problem", res.Unpacked.PutsPerBatch)
	}
	if res.ThroughputSpeedup < 2 {
		t.Errorf("throughput speedup %.2fx, want ≥ 2x", res.ThroughputSpeedup)
	}
	if res.Packed.DollarsPerDay >= res.Unpacked.DollarsPerDay {
		t.Errorf("packed $%.4f/day not cheaper than unpacked $%.4f/day",
			res.Packed.DollarsPerDay, res.Unpacked.DollarsPerDay)
	}
	if res.AllocsPerCommit > 2 {
		t.Errorf("allocs/commit = %.2f, want ≤ 2 on the steady-state hot path", res.AllocsPerCommit)
	}
}
