package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// This file measures fleet mode: one process multiplexing many tenant
// databases over shared upload/fetch pools, one bucket (per-tenant
// prefixes) and one tick wheel. Each sweep point admits N tenants —
// one hot writer whose commit latency is measured, one dumping
// antagonist saturating the bulk path (N ≥ 2), the rest idle with
// timers armed, the common shape of a real fleet — and reports the
// marginal per-tenant footprint and the hot tenant's commit quantiles.
// Latencies are virtual time on the simulated WAN (deterministic);
// goroutine and heap footprints are real runtime counters.

// FleetBenchOptions configures the fleet sweep.
type FleetBenchOptions struct {
	// Sizes are the fleet sizes to sweep (default 1, 10, 100, 1000).
	Sizes []int
	// Commits is how many measured commits the hot tenant issues per
	// sweep point.
	Commits int
	// AntagonistBurst is how many near-page-size writes the antagonist
	// issues between each measured commit (checkpoint/dump traffic).
	AntagonistBurst int
}

func (o FleetBenchOptions) withDefaults() FleetBenchOptions {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{1, 10, 100, 1000}
	}
	if o.Commits == 0 {
		o.Commits = 40
	}
	if o.AntagonistBurst == 0 {
		o.AntagonistBurst = 4
	}
	return o
}

// FleetBenchRow is one sweep point.
type FleetBenchRow struct {
	Tenants int `json:"tenants"`
	// GoroutinesPerTenant / HeapBytesPerTenant are (after admitting and
	// booting every tenant − process baseline) ÷ Tenants: the all-in
	// per-tenant footprint, shared overhead amortised.
	GoroutinesPerTenant float64 `json:"goroutines_per_tenant"`
	HeapBytesPerTenant  float64 `json:"heap_bytes_per_tenant"`
	// CommitP50Ms / CommitP99Ms are the hot tenant's synchronous commit
	// (put + flush round trip) quantiles in virtual time, measured while
	// the antagonist dumps.
	CommitP50Ms float64 `json:"commit_p50_ms"`
	CommitP99Ms float64 `json:"commit_p99_ms"`
	// SafetyDeadlineMisses counts Safety-class PUTs fleet-wide that
	// out-waited their TS budget in the shared scheduler queue. The gate
	// is zero: the antagonist never starves anyone's commit window.
	SafetyDeadlineMisses int64 `json:"safety_deadline_misses"`
}

// FleetBenchResult is the machine-readable content of BENCH_fleet.json.
type FleetBenchResult struct {
	Rows []FleetBenchRow `json:"rows"`
	// SoloCommitP50Ms is the 1-tenant row's p50 (no antagonist): the
	// baseline the contention gate compares against.
	SoloCommitP50Ms float64 `json:"solo_commit_p50_ms"`
	// P50RatioAt100 is p50(100 tenants, antagonist dumping) / solo p50.
	// Gate: ≤ 1.5. Zero when the sweep has no 100-tenant row.
	P50RatioAt100 float64 `json:"p50_ratio_at_100"`
	// GoroutineGrowth10To1000 / HeapGrowth10To1000 are the fractional
	// change of the per-tenant footprint from the 10-tenant to the
	// 1000-tenant row (0.08 = +8%). Gate: ≤ 0.10 — the marginal tenant
	// stays flat as the fleet grows. Zero when either row is absent.
	GoroutineGrowth10To1000 float64 `json:"goroutine_growth_10_to_1000"`
	HeapGrowth10To1000      float64 `json:"heap_growth_10_to_1000"`
}

// fleetPoint measures one sweep point.
func fleetPoint(opts FleetBenchOptions, tenants int) (FleetBenchRow, error) {
	row := FleetBenchRow{Tenants: tenants}

	// Baseline before any fleet state exists. Two GC cycles so
	// sync.Pool victim caches from a previous sweep point drain and
	// don't smear into this point's delta.
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heap0 := ms.HeapAlloc
	gor0 := runtime.NumGoroutine()

	clk := simclock.NewSim()
	stopPump := clk.Pump()
	defer stopPump()
	store := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
		Profile: datapathProfile(),
		Clock:   clk,
		Seed:    int64(tenants),
	})
	fleet, err := core.NewFleet(core.FleetParams{
		Store:       store,
		Clock:       clk,
		UploadSlots: 32,
		FetchSlots:  16,
		TenantCap:   2,
	})
	if err != nil {
		return row, err
	}
	defer fleet.Close()

	params := func() core.Params {
		p := core.DefaultParams()
		p.Batch = 1 // every commit is its own Safety-class PUT
		p.Safety = 8
		p.BatchTimeout = 50 * time.Millisecond
		p.SafetyTimeout = 10 * time.Second
		p.RetryBaseDelay = 20 * time.Millisecond
		p.Uploaders = 1
		return p
	}
	ctx := context.Background()
	for i := 0; i < tenants; i++ {
		g, err := fleet.Admit(fmt.Sprintf("t%04d", i), vfs.NewMemFS(), dbevent.NewPGProcessor(), params())
		if err != nil {
			return row, err
		}
		if err := g.Boot(ctx); err != nil {
			return row, err
		}
	}

	// The all-in footprint once every tenant is up and idle (two GC
	// cycles: retained state, not reclaimable pool scratch).
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&ms)
	row.GoroutinesPerTenant = float64(runtime.NumGoroutine()-gor0) / float64(tenants)
	if ms.HeapAlloc > heap0 {
		row.HeapBytesPerTenant = float64(ms.HeapAlloc-heap0) / float64(tenants)
	}

	engine := func() minidb.Engine { return pgengine.NewWithSizes(512, 8192, 1024) }
	hot := fleet.Tenant("t0000")
	hotDB, err := minidb.Open(hot.FS(), engine(), minidb.Options{})
	if err != nil {
		return row, err
	}
	if err := hotDB.CreateTable("kv", 4); err != nil {
		return row, err
	}
	var antaDB *minidb.DB
	if tenants >= 2 {
		anta := fleet.Tenant("t0001")
		if antaDB, err = minidb.Open(anta.FS(), engine(), minidb.Options{}); err != nil {
			return row, err
		}
		if err := antaDB.CreateTable("kv", 4); err != nil {
			return row, err
		}
	}

	// Measured workload: between each synchronous hot commit the
	// antagonist writes a burst of near-page-size rows and checkpoints,
	// so its dump/checkpoint PUTs contend with the hot tenant's
	// Safety-class PUTs on the shared upload pool throughout.
	pad := strings.Repeat("x", 400)
	lats := make([]time.Duration, 0, opts.Commits)
	for i := 0; i < opts.Commits; i++ {
		if antaDB != nil {
			for j := 0; j < opts.AntagonistBurst; j++ {
				if err := antaDB.Update(func(tx *minidb.Txn) error {
					return tx.Put("kv", []byte(fmt.Sprintf("a%03d", (i*opts.AntagonistBurst+j)%128)), []byte(pad))
				}); err != nil {
					return row, err
				}
			}
			if err := antaDB.Checkpoint(); err != nil {
				return row, err
			}
		}
		t0 := clk.Now()
		if err := hotDB.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte("k"), []byte(fmt.Sprintf("v%d", i)))
		}); err != nil {
			return row, err
		}
		if !hot.Flush(2 * time.Minute) {
			return row, fmt.Errorf("fleet bench: hot flush timed out at %d tenants, commit %d", tenants, i)
		}
		lats = append(lats, clk.Since(t0))
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	row.CommitP50Ms = quantileMs(lats, 0.50)
	row.CommitP99Ms = quantileMs(lats, 0.99)
	row.SafetyDeadlineMisses = fleet.Stats().SafetyDeadlineMisses
	return row, nil
}

// RunFleetBench sweeps the fleet sizes and derives the gate ratios.
func RunFleetBench(opts FleetBenchOptions) (*FleetBenchResult, error) {
	opts = opts.withDefaults()
	res := &FleetBenchResult{}
	byN := make(map[int]FleetBenchRow)
	for _, n := range opts.Sizes {
		row, err := fleetPoint(opts, n)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
		byN[n] = row
	}
	if r, ok := byN[1]; ok {
		res.SoloCommitP50Ms = r.CommitP50Ms
	}
	if r, ok := byN[100]; ok && res.SoloCommitP50Ms > 0 {
		res.P50RatioAt100 = r.CommitP50Ms / res.SoloCommitP50Ms
	}
	r10, ok10 := byN[10]
	r1000, ok1000 := byN[1000]
	if ok10 && ok1000 {
		if r10.GoroutinesPerTenant > 0 {
			res.GoroutineGrowth10To1000 = r1000.GoroutinesPerTenant/r10.GoroutinesPerTenant - 1
		}
		if r10.HeapBytesPerTenant > 0 {
			res.HeapGrowth10To1000 = r1000.HeapBytesPerTenant/r10.HeapBytesPerTenant - 1
		}
	}
	return res, nil
}
