package experiments

import "testing"

// The acceptance bar for the parallel data path: at parallelism 5 on the
// simulated WAN, dump upload and disaster recovery must both be at least
// 2x faster than the serial baseline. Virtual time makes this exact and
// fast to check.
func TestDatapathParallelSpeedup(t *testing.T) {
	res, err := RunDatapath(DatapathOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dump:     serial %.1fms, parallel(%d) %.1fms, speedup %.2fx (%d parts)",
		res.Serial.DumpUploadMs, res.Parallel.Parallelism, res.Parallel.DumpUploadMs,
		res.DumpSpeedup, res.Parallel.DumpParts)
	t.Logf("recovery: serial %.1fms, parallel(%d) %.1fms, speedup %.2fx (%d objects)",
		res.Serial.RecoveryMs, res.Parallel.Parallelism, res.Parallel.RecoveryMs,
		res.RecoverySpeedup, res.Parallel.RecoveryObjects)
	t.Logf("seal allocs/op %.1f, open allocs/op %.1f", res.SealAllocsPerOp, res.OpenAllocsPerOp)

	if res.Parallel.DumpParts < 3 {
		t.Fatalf("dump split into only %d parts; the scenario does not exercise parallel PUTs", res.Parallel.DumpParts)
	}
	if res.DumpSpeedup < 2 {
		t.Errorf("dump speedup %.2fx, want >= 2x", res.DumpSpeedup)
	}
	if res.RecoverySpeedup < 2 {
		t.Errorf("recovery speedup %.2fx, want >= 2x", res.RecoverySpeedup)
	}
	// The pooled sealer should allocate only the output buffer (and a
	// handful of incidentals), not a zlib encoder per call.
	if res.SealAllocsPerOp > 16 {
		t.Errorf("seal allocs/op = %.1f, want pooled-path small (<= 16)", res.SealAllocsPerOp)
	}
}
