// Package experiments implements the paper's evaluation harness: every
// table and figure of §3, §7 and §8 can be regenerated through the
// functions here (used by cmd/ginja-bench and the repository's Go
// benchmarks). Cost experiments (Figures 1 and 4, Table 2, §7.3) are
// analytic; performance experiments (Figures 5–7, Tables 3–4) run the real
// Ginja stack — minidb + interception + commit pipeline — against the
// simulated cloud with the WAN latency profile fitted from the paper's
// Table 3.
package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/metrics"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/innoengine"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
	"github.com/ginja-dr/ginja/internal/workload/tpcc"
)

// Baseline selects what sits under the DBMS in a TPC-C run.
type Baseline string

// Baselines, mirroring the first columns of Figure 5.
const (
	// BaselineNative runs the DBMS directly on the local FS (the paper's
	// ext4 column).
	BaselineNative Baseline = "native"
	// BaselineIntercept adds the interception layer with a no-op observer
	// (the paper's FUSE column: interception cost without Ginja).
	BaselineIntercept Baseline = "intercept"
	// BaselineGinja runs the full Ginja stack.
	BaselineGinja Baseline = "ginja"
)

// TPCCOptions configures one TPC-C measurement cell.
type TPCCOptions struct {
	// EngineName selects the DBMS personality: "postgresql" or "mysql".
	EngineName string
	// Baseline selects native / intercept / ginja.
	Baseline Baseline
	// Params is the Ginja configuration (ignored for baselines).
	Params core.Params
	// Duration is the measured window.
	Duration time.Duration
	// Workload scales TPC-C. Zero values take laptop-scale defaults;
	// the paper uses 1 warehouse/5 terminals for PostgreSQL and
	// 2 warehouses/60 terminals for MySQL.
	Workload tpcc.Config
	// TimeScale compresses the simulated cloud latency (see cloudsim);
	// metrics still report unscaled model values. Default 100.
	TimeScale float64
	// Profile is the network model; defaults to the WAN profile.
	Profile cloudsim.Profile
	// Seed for the simulator.
	Seed int64
}

func (o TPCCOptions) normalized() TPCCOptions {
	if o.EngineName == "" {
		o.EngineName = "postgresql"
	}
	if o.Baseline == "" {
		o.Baseline = BaselineGinja
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.TimeScale == 0 {
		o.TimeScale = 100
	}
	if o.Profile == (cloudsim.Profile{}) {
		o.Profile = cloudsim.WANProfile()
	}
	if o.Workload.Warehouses == 0 {
		o.Workload = tpcc.DefaultConfig()
		if o.EngineName == "mysql" {
			// The paper drives MySQL with 2 warehouses and more
			// terminals (§8).
			o.Workload.Warehouses = 2
			o.Workload.Terminals = 12
		}
	}
	return o
}

// engineFor builds the engine instance for a personality name.
func engineFor(name string) (minidb.Engine, error) {
	switch name {
	case "postgresql":
		return pgengine.New(), nil
	case "mysql":
		return innoengine.New(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown engine %q", name)
	}
}

// TPCCResult is one measurement cell.
type TPCCResult struct {
	// TpmC and TpmTotal are the paper's throughput metrics.
	TpmC     float64
	TpmTotal float64
	// Ginja holds the middleware counters (zero for baselines).
	Ginja core.Stats
	// CloudOps are the metered cloud operations (zero for baselines).
	CloudOps cloud.OpCounts
	// ModelledPutLatency aggregates the WAN-model PUT latencies (what a
	// real deployment would have observed, independent of TimeScale).
	ModelledPutLatency cloud.LatencyStats
	// Resources samples the process during the run (Table 4 proxy).
	Resources metrics.ResourceUsage
	// WALObjectMeanBytes is the average uploaded WAL object size.
	WALObjectMeanBytes float64
}

// RunTPCC executes one TPC-C measurement cell end to end: build the
// database, attach (or not) Ginja, run the workload for the configured
// duration, and collect every metric the paper's tables need.
func RunTPCC(ctx context.Context, opts TPCCOptions) (TPCCResult, error) {
	opts = opts.normalized()
	var res TPCCResult

	engine, err := engineFor(opts.EngineName)
	if err != nil {
		return res, err
	}
	localFS := vfs.NewMemFS()

	var (
		dbFS    vfs.FS
		g       *core.Ginja
		metered *cloud.MeteredStore
		sim     *cloudsim.Store
	)
	switch opts.Baseline {
	case BaselineNative:
		dbFS = localFS
	case BaselineIntercept:
		dbFS = vfs.NewInterceptFS(localFS, nil)
	case BaselineGinja:
		sim = cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
			Profile:   opts.Profile,
			TimeScale: opts.TimeScale,
			Seed:      opts.Seed,
		})
		metered = cloud.NewMeteredStore(sim, cloud.AmazonS3May2017())
		proc := dbevent.ForEngine(opts.EngineName)
		g, err = core.New(localFS, metered, proc, opts.Params)
		if err != nil {
			return res, err
		}
		if err := g.Boot(ctx); err != nil {
			return res, err
		}
		defer g.Close()
		dbFS = g.FS()
	default:
		return res, fmt.Errorf("experiments: unknown baseline %q", opts.Baseline)
	}

	db, err := minidb.Open(dbFS, engine, minidb.Options{})
	if err != nil {
		return res, err
	}
	defer db.Close()
	if err := tpcc.Load(db, opts.Workload); err != nil {
		return res, err
	}
	// Measure only the steady-state workload: reset counters after load.
	if metered != nil {
		metered.Reset()
	}
	if sim != nil {
		sim.ResetLatencyModel()
	}
	sampler := metrics.NewResourceSampler()

	driver := tpcc.NewDriver(db, opts.Workload)
	bench, err := driver.Run(ctx, opts.Duration)
	if err != nil {
		return res, err
	}
	res.Resources = sampler.Sample()
	res.TpmC = bench.TpmC
	res.TpmTotal = bench.TpmTotal

	if g != nil {
		if !g.Flush(30 * time.Second) {
			return res, fmt.Errorf("experiments: ginja did not drain")
		}
		if err := g.Err(); err != nil {
			return res, fmt.Errorf("experiments: ginja error: %w", err)
		}
		res.Ginja = g.Stats()
		res.CloudOps = metered.Counts()
		res.ModelledPutLatency = sim.PutLatencyModel()
		if res.Ginja.WALObjectsUploaded > 0 {
			res.WALObjectMeanBytes = float64(res.Ginja.WALBytesUploaded) / float64(res.Ginja.WALObjectsUploaded)
		}
	}
	return res, nil
}
