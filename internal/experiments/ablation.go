package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// writeThroughGinja boots a Ginja over a memory store, pushes `writes`
// page writes through the intercepted WAL path and drains, returning the
// stats. samePage repeats one page (the aggregation-friendly pattern);
// otherwise pages are distinct.
func writeThroughGinja(ctx context.Context, params core.Params, store cloud.ObjectStore,
	writes int, samePage bool) (core.Stats, error) {
	g, err := core.New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		return core.Stats{}, err
	}
	if err := g.Boot(ctx); err != nil {
		return core.Stats{}, err
	}
	defer g.Close()
	f, err := g.FS().OpenFile(pgengine.SegmentPath(0), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return core.Stats{}, err
	}
	defer f.Close()
	page := make([]byte, 8192)
	for i := 0; i < writes; i++ {
		off := int64(0)
		if !samePage {
			off = int64(i%1024) * 8192
		}
		if _, err := f.WriteAt(page, off); err != nil {
			return core.Stats{}, err
		}
	}
	if !g.Flush(time.Minute) {
		return core.Stats{}, fmt.Errorf("experiments: ablation flush timed out")
	}
	return g.Stats(), nil
}

// AblationAggregation quantifies write aggregation: the same page-rewrite
// workload with coalescing on vs off (DESIGN.md §5).
type AblationAggregation struct {
	Writes          int
	PutsAggregated  int64
	PutsNaive       int64
	SavingsX        float64
	BytesAggregated int64
	BytesNaive      int64
}

// RunAblationAggregation performs the aggregation ablation.
func RunAblationAggregation(ctx context.Context, writes int) (AblationAggregation, error) {
	res := AblationAggregation{Writes: writes}
	p := core.DefaultParams()
	p.Batch = 100
	p.Safety = 10000
	p.BatchTimeout = 20 * time.Millisecond

	with, err := writeThroughGinja(ctx, p, cloud.NewMemStore(), writes, true)
	if err != nil {
		return res, err
	}
	p.DisableAggregation = true
	without, err := writeThroughGinja(ctx, p, cloud.NewMemStore(), writes, true)
	if err != nil {
		return res, err
	}
	res.PutsAggregated = with.WALObjectsUploaded
	res.PutsNaive = without.WALObjectsUploaded
	res.BytesAggregated = with.WALBytesUploaded
	res.BytesNaive = without.WALBytesUploaded
	if res.PutsAggregated > 0 {
		res.SavingsX = float64(res.PutsNaive) / float64(res.PutsAggregated)
	}
	return res, nil
}

// AblationUploadersRow is one pool size in the uploader sweep.
type AblationUploadersRow struct {
	Uploaders int
	Drain     time.Duration
}

// RunAblationUploaders sweeps the uploader-pool size (the paper found 5
// best in its environment) over a burst of one-object-per-write uploads
// through the WAN latency model.
func RunAblationUploaders(ctx context.Context, pools []int, writes int) ([]AblationUploadersRow, error) {
	var rows []AblationUploadersRow
	for _, n := range pools {
		p := core.DefaultParams()
		p.Batch = 1
		p.Safety = writes * 2
		p.Uploaders = n
		p.BatchTimeout = 10 * time.Millisecond
		store := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
			Profile:   cloudsim.WANProfile(),
			TimeScale: 400,
		})
		start := time.Now()
		if _, err := writeThroughGinja(ctx, p, store, writes, false); err != nil {
			return nil, fmt.Errorf("experiments: uploaders=%d: %w", n, err)
		}
		rows = append(rows, AblationUploadersRow{Uploaders: n, Drain: time.Since(start)})
	}
	return rows, nil
}

// AblationDumpThresholdRow is one threshold in the dump sweep.
type AblationDumpThresholdRow struct {
	Threshold    float64
	Dumps        int64
	BytesHeld    int64 // cloud occupancy at the end
	BytesShipped int64 // total DB bytes uploaded
}

// RunAblationDumpThreshold sweeps the dump trigger (150 % in the paper):
// lower thresholds dump more often (more upload traffic, less storage
// held); higher thresholds accumulate incremental checkpoints.
func RunAblationDumpThreshold(ctx context.Context, thresholds []float64) ([]AblationDumpThresholdRow, error) {
	var rows []AblationDumpThresholdRow
	for _, th := range thresholds {
		p := core.DefaultParams()
		p.Batch = 8
		p.Safety = 1024
		p.BatchTimeout = 10 * time.Millisecond
		p.DumpThreshold = th
		metered := cloud.NewMeteredStore(cloud.NewMemStore(), cloud.AmazonS3May2017())
		g, err := core.New(vfs.NewMemFS(), metered, dbevent.NewPGProcessor(), p)
		if err != nil {
			return nil, err
		}
		if err := g.Boot(ctx); err != nil {
			return nil, err
		}
		db, err := minidb.Open(g.FS(), pgengine.NewWithSizes(1024, 64*1024, 1024), minidb.Options{})
		if err != nil {
			return nil, err
		}
		if err := db.CreateTable("kv", 8); err != nil {
			return nil, err
		}
		var ckpts int64
		for round := 0; round < 6; round++ {
			for k := 0; k < 16; k++ {
				if err := db.Update(func(tx *minidb.Txn) error {
					return tx.Put("kv", []byte(fmt.Sprintf("k%02d", k)),
						[]byte(fmt.Sprintf("round-%d-%s", round, string(make([]byte, 256)))))
				}); err != nil {
					return nil, err
				}
			}
			if !g.Flush(time.Minute) {
				return nil, fmt.Errorf("experiments: threshold %.1f: flush", th)
			}
			if err := db.Checkpoint(); err != nil {
				return nil, err
			}
			ckpts++
			deadline := time.Now().Add(time.Minute)
			for g.Stats().Checkpoints+g.Stats().Dumps < ckpts {
				if time.Now().After(deadline) {
					return nil, fmt.Errorf("experiments: threshold %.1f: checkpoint upload stuck", th)
				}
				time.Sleep(time.Millisecond)
			}
		}
		s := g.Stats()
		rows = append(rows, AblationDumpThresholdRow{
			Threshold:    th,
			Dumps:        s.Dumps,
			BytesHeld:    metered.Counts().StoredBytes,
			BytesShipped: s.DBBytesUploaded,
		})
		db.Close()
		g.Close()
	}
	return rows, nil
}

// FprintAblations runs and renders all ablation experiments.
func FprintAblations(ctx context.Context, w io.Writer) error {
	agg, err := RunAblationAggregation(ctx, 2000)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation — write aggregation (%d same-page rewrites):\n", agg.Writes)
	fmt.Fprintf(w, "  aggregated: %d PUTs (%.1f MiB)   naive: %d PUTs (%.1f MiB)   savings: %.0f×\n",
		agg.PutsAggregated, float64(agg.BytesAggregated)/(1<<20),
		agg.PutsNaive, float64(agg.BytesNaive)/(1<<20), agg.SavingsX)

	ups, err := RunAblationUploaders(ctx, []int{1, 5, 16}, 200)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation — uploader pool size (200 objects through the WAN model):")
	for _, r := range ups {
		fmt.Fprintf(w, "  uploaders=%-3d drain %s\n", r.Uploaders, r.Drain.Round(time.Millisecond))
	}

	dumps, err := RunAblationDumpThreshold(ctx, []float64{1.2, 1.5, 3.0})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation — dump threshold (6 checkpoint rounds):")
	for _, r := range dumps {
		fmt.Fprintf(w, "  threshold=%.1f  dumps=%d  cloud-held %.1f KiB  shipped %.1f KiB\n",
			r.Threshold, r.Dumps, float64(r.BytesHeld)/1024, float64(r.BytesShipped)/1024)
	}
	return nil
}
