package experiments

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/workload/tpcc"
)

// cellDur keeps experiment tests fast; shapes remain visible at this
// scale because the latency model, not the wall clock, drives them.
const cellDur = 300 * time.Millisecond

func TestRunTPCCBaselines(t *testing.T) {
	ctx := context.Background()
	for _, baseline := range []Baseline{BaselineNative, BaselineIntercept} {
		res, err := RunTPCC(ctx, TPCCOptions{Baseline: baseline, Duration: cellDur})
		if err != nil {
			t.Fatalf("%s: %v", baseline, err)
		}
		if res.TpmTotal <= 0 {
			t.Fatalf("%s: TpmTotal = %v", baseline, res.TpmTotal)
		}
		if res.Ginja.WALObjectsUploaded != 0 {
			t.Fatalf("%s: baseline must not upload", baseline)
		}
	}
}

func TestRunTPCCGinjaUploads(t *testing.T) {
	res, err := RunTPCC(context.Background(), TPCCOptions{
		Baseline: BaselineGinja,
		Params:   ginjaParams(10, 1000, false, false),
		Duration: cellDur,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TpmTotal <= 0 {
		t.Fatalf("TpmTotal = %v", res.TpmTotal)
	}
	if res.Ginja.WALObjectsUploaded == 0 {
		t.Fatal("no WAL objects uploaded")
	}
	if res.CloudOps.Puts == 0 {
		t.Fatal("no cloud PUTs metered")
	}
	if res.ModelledPutLatency.Count == 0 {
		t.Fatal("no modelled latency recorded")
	}
	if res.WALObjectMeanBytes <= 0 {
		t.Fatal("no object size recorded")
	}
}

func TestFigure5ShapeHighBSBeatsNoLoss(t *testing.T) {
	// The central Figure 5 claim: a generous B/S configuration performs
	// close to the interception baseline, while No-Loss (S=B=1) collapses.
	ctx := context.Background()
	run := func(b, s int) float64 {
		t.Helper()
		res, err := RunTPCC(ctx, TPCCOptions{
			Baseline: BaselineGinja,
			Params:   ginjaParams(b, s, false, false),
			Duration: cellDur,
			// Mild scale so the per-upload latency is felt but the test
			// stays fast.
			TimeScale: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TpmTotal
	}
	generous := run(100, 10000)
	noLoss := run(1, 1)
	if noLoss >= generous {
		t.Fatalf("No-Loss (%v tpm) should be far below B=100/S=10000 (%v tpm)", noLoss, generous)
	}
	if noLoss > generous/2 {
		t.Fatalf("No-Loss = %v tpm vs %v tpm: expected a much larger collapse", noLoss, generous)
	}
}

func TestTable3ShapeBatchingReducesPuts(t *testing.T) {
	// Table 3's shape: B=10 → many small objects; B=1000 → far fewer,
	// bigger objects with higher per-PUT latency.
	rows, err := Table3(context.Background(), "postgresql", cellDur)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	byConfig := make(map[string]Table3Row, len(rows))
	for _, r := range rows {
		byConfig[r.Config] = r
	}
	small := byConfig["10/100 plain"]
	large := byConfig["1000/10000 plain"]
	if small.RawWindowPUTs <= large.RawWindowPUTs {
		t.Fatalf("PUTs: B=10 (%d) should exceed B=1000 (%d)", small.RawWindowPUTs, large.RawWindowPUTs)
	}
	if small.ObjectSizeKB >= large.ObjectSizeKB {
		t.Fatalf("object size: B=10 (%.1f kB) should be below B=1000 (%.1f kB)",
			small.ObjectSizeKB, large.ObjectSizeKB)
	}
	if small.PutLatencyMS >= large.PutLatencyMS {
		t.Fatalf("latency: B=10 (%.0f ms) should be below B=1000 (%.0f ms)",
			small.PutLatencyMS, large.PutLatencyMS)
	}
	// Compression shrinks objects (paper: ≈37 % smaller).
	plain := byConfig["100/1000 plain"]
	cc := byConfig["100/1000 C+C"]
	if cc.ObjectSizeKB >= plain.ObjectSizeKB {
		t.Fatalf("C+C objects (%.1f kB) should be smaller than plain (%.1f kB)",
			cc.ObjectSizeKB, plain.ObjectSizeKB)
	}
}

func TestTable4ProducesRows(t *testing.T) {
	rows, err := Table4(context.Background(), "postgresql", cellDur)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MemPercent <= 0 {
			t.Fatalf("row %q: MemPercent = %v", r.Config, r.MemPercent)
		}
	}
}

func TestFigure7ShapeGrowsWithSizeAndLANFaster(t *testing.T) {
	rows, err := Figure7(context.Background(), []int{1, 3}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.InRegionVM >= r.OnPremises {
			t.Fatalf("W=%d: in-region (%v) should beat on-premises (%v)",
				r.Warehouses, r.InRegionVM, r.OnPremises)
		}
		if r.BytesOnPrem == 0 || r.ObjectsOnPrem == 0 {
			t.Fatalf("W=%d: nothing downloaded", r.Warehouses)
		}
	}
	if rows[1].OnPremises <= rows[0].OnPremises {
		t.Fatalf("recovery time should grow with database size: W=1 %v vs W=3 %v",
			rows[0].OnPremises, rows[1].OnPremises)
	}
}

func TestFigure2Blocking(t *testing.T) {
	res, err := Figure2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerUpdateBlocked) != 21 {
		t.Fatalf("%d updates", len(res.PerUpdateBlocked))
	}
	// Updates 1..20 must be fast; update 21 must have blocked.
	for i := 0; i < 20; i++ {
		if res.PerUpdateBlocked[i] > 60*time.Millisecond {
			t.Fatalf("update %d blocked %v below the Safety limit", i+1, res.PerUpdateBlocked[i])
		}
	}
	if res.FirstBlockedUpdate != 21 {
		t.Fatalf("FirstBlockedUpdate = %d, want 21", res.FirstBlockedUpdate)
	}
	if res.Batches < 10 {
		t.Fatalf("Batches = %d, want ≈10 for 21 updates at B=2", res.Batches)
	}
}

func TestRunRecoveryValidatesRestart(t *testing.T) {
	res, err := RunRecovery(context.Background(), RecoveryOptions{
		Warehouses:       1,
		WorkloadDuration: 200 * time.Millisecond,
		Profile:          cloudsim.LANProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelledTime <= 0 {
		t.Fatalf("ModelledTime = %v", res.ModelledTime)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	FprintFigure1(&buf, 1.0)
	FprintFigure4(&buf)
	FprintTable2(&buf)
	FprintRecoveryCosts(&buf)
	FprintFigure5(&buf, "postgresql", []Figure5Row{{Cell: Figure5Cells()[0], TpmC: 1, TpmTotal: 2}})
	FprintFigure6(&buf, "postgresql", []Figure6Row{{Cell: Figure6Cells()[0], TpmC: 1, TpmTotal: 2}})
	FprintTable3(&buf, "postgresql", []Table3Row{{Config: "10/100 plain"}}, time.Second)
	FprintTable4(&buf, "postgresql", []Table4Row{{Config: "Native FS"}})
	FprintFigure7(&buf, []Figure7Row{{Warehouses: 1}})
	FprintFigure2(&buf, Figure2Result{B: 2, S: 20, PerUpdateBlocked: make([]time.Duration, 3)})
	if buf.Len() < 500 {
		t.Fatalf("renderers produced only %d bytes", buf.Len())
	}
}

func TestEngineForRejectsUnknown(t *testing.T) {
	if _, err := engineFor("oracle"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := RunTPCC(context.Background(), TPCCOptions{EngineName: "oracle"}); err == nil {
		t.Fatal("unknown engine accepted by RunTPCC")
	}
}

func TestMySQLCellRuns(t *testing.T) {
	res, err := RunTPCC(context.Background(), TPCCOptions{
		EngineName: "mysql",
		Baseline:   BaselineGinja,
		Params:     ginjaParams(100, 1000, false, false),
		Duration:   cellDur,
		Workload:   tpccSmall(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TpmTotal <= 0 || res.Ginja.WALObjectsUploaded == 0 {
		t.Fatalf("mysql cell: %+v", res)
	}
}

// tpccSmall returns a minimal workload for fast engine smoke cells.
func tpccSmall() tpcc.Config {
	return tpcc.Config{Warehouses: 1, Districts: 2, Customers: 5, Items: 20, Terminals: 2, Seed: 3}
}

func TestAblationAggregation(t *testing.T) {
	res, err := RunAblationAggregation(context.Background(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.PutsNaive != 500 {
		t.Fatalf("naive PUTs = %d, want one per write", res.PutsNaive)
	}
	if res.SavingsX < 10 {
		t.Fatalf("aggregation savings = %.1f×, want ≫ 1", res.SavingsX)
	}
	if res.BytesAggregated >= res.BytesNaive {
		t.Fatalf("aggregation did not reduce bytes: %d vs %d", res.BytesAggregated, res.BytesNaive)
	}
}

func TestAblationUploadersParallelismHelps(t *testing.T) {
	rows, err := RunAblationUploaders(context.Background(), []int{1, 8}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Drain >= rows[0].Drain {
		t.Fatalf("8 uploaders (%v) should drain faster than 1 (%v)", rows[1].Drain, rows[0].Drain)
	}
}

func TestAblationDumpThresholdTradeoff(t *testing.T) {
	rows, err := RunAblationDumpThreshold(context.Background(), []float64{1.2, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	eager, lazy := rows[0], rows[1]
	if eager.Dumps <= lazy.Dumps {
		t.Fatalf("threshold 1.2 should dump more often than 3.0 (%d vs %d)", eager.Dumps, lazy.Dumps)
	}
}

func TestFprintAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := FprintAblations(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 200 {
		t.Fatalf("ablation output only %d bytes", buf.Len())
	}
}
