package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// Figure2Result demonstrates the Batch/Safety semantics of Figure 2:
// B = 2 (every two updates trigger a synchronization) and S = 20 (the
// 21st unacknowledged update blocks the DBMS).
type Figure2Result struct {
	B, S int
	// PerUpdateBlocked is how long each of the updates spent blocked.
	PerUpdateBlocked []time.Duration
	// Batches is the number of cloud synchronizations performed.
	Batches int64
	// FirstBlockedUpdate is the 1-based index of the first update that
	// blocked measurably (0 = none did).
	FirstBlockedUpdate int
}

// Figure2 reproduces the paper's Figure 2 execution: 21 updates through
// Ginja configured with B=2, S=20 over a cloud with visible upload
// latency. Updates 1–20 return immediately; update 21 blocks until the
// pending synchronizations are acknowledged.
func Figure2(ctx context.Context) (Figure2Result, error) {
	const (
		b       = 2
		s       = 20
		updates = 21
	)
	res := Figure2Result{B: b, S: s}

	sim := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
		Profile: cloudsim.Profile{
			BaseLatency:       120 * time.Millisecond,
			UploadBandwidth:   10e6,
			DownloadBandwidth: 10e6,
		},
		TimeScale: 1, // real sleeps: the blocking must be observable
	})
	params := core.DefaultParams()
	params.Batch = b
	params.Safety = s
	params.BatchTimeout = 20 * time.Millisecond
	params.SafetyTimeout = 10 * time.Second
	params.Uploaders = 1 // serialise uploads so the illustration is crisp

	localFS := vfs.NewMemFS()
	g, err := core.New(localFS, sim, dbevent.NewPGProcessor(), params)
	if err != nil {
		return res, err
	}
	if err := g.Boot(ctx); err != nil {
		return res, err
	}
	defer g.Close()

	// Drive WAL-page writes through the intercepted file system exactly
	// like a DBMS would.
	fsys := g.FS()
	f, err := fsys.OpenFile("pg_xlog/000000010000000000000000", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return res, err
	}
	defer f.Close()

	page := make([]byte, 8192)
	for i := 0; i < updates; i++ {
		start := time.Now()
		if _, err := f.WriteAt(page, int64(i)*8192); err != nil {
			return res, fmt.Errorf("figure2 update %d: %w", i+1, err)
		}
		blocked := time.Since(start)
		res.PerUpdateBlocked = append(res.PerUpdateBlocked, blocked)
		if res.FirstBlockedUpdate == 0 && blocked > 50*time.Millisecond {
			res.FirstBlockedUpdate = i + 1
		}
	}
	if !g.Flush(30 * time.Second) {
		return res, fmt.Errorf("figure2: queue did not drain")
	}
	res.Batches = g.Stats().Batches
	return res, nil
}
