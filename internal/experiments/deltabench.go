package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// This file measures what incremental delta checkpoints buy on the
// workload they exist for — a large database where each DumpThreshold
// crossing finds only a small clustered fraction of pages dirty. The
// same deterministic workload runs twice, once with DeltaCheckpoints
// and once with classic full re-dumps, so every number is a direct
// apples-to-apples comparison on the virtual clock: checkpoint bytes
// shipped per crossing, bytes read under the stop-writes dump gate,
// and disaster recovery through a maximum-length chain versus a single
// fresh base.

// DeltaBenchOptions configures the delta-vs-full measurement.
type DeltaBenchOptions struct {
	// Rows and ValueBytes size the database. DirtyRows rows (clustered,
	// key-adjacent — the hot-page pattern) are rewritten per round.
	Rows       int
	ValueBytes int
	DirtyRows  int
	// Rounds is how many dirty→checkpoint→crossing cycles run after the
	// base dump; the delta run's MaxDeltaChain is set to Rounds so the
	// final recovery walks a maximum-length chain.
	Rounds int
	// MaxObjectSize splits the base dump into parts; Parallel is the
	// uploader/fetcher parallelism (as in DatapathOptions).
	MaxObjectSize int64
	Parallel      int
}

func (o DeltaBenchOptions) withDefaults() DeltaBenchOptions {
	if o.Rows == 0 {
		o.Rows = 880
	}
	if o.ValueBytes == 0 {
		o.ValueBytes = 512
	}
	if o.DirtyRows == 0 {
		o.DirtyRows = o.Rows / 100 // the titular 1 %-dirty workload
		if o.DirtyRows < 2 {
			o.DirtyRows = 2
		}
	}
	if o.Rounds == 0 {
		o.Rounds = 6
	}
	if o.MaxObjectSize == 0 {
		o.MaxObjectSize = 16 << 10
	}
	if o.Parallel == 0 {
		o.Parallel = 5
	}
	return o
}

// DeltaBenchResult is the delta_checkpoint section of
// BENCH_datapath.json.
type DeltaBenchResult struct {
	Rows      int `json:"rows"`
	DirtyRows int `json:"dirty_rows"`
	// LocalDBBytes is the database size at checkpoint time — what a full
	// re-dump must read under the gate and ship.
	LocalDBBytes int64 `json:"local_db_bytes"`
	// FullRedumpBytes / DeltaBytes are the sealed bytes one DumpThreshold
	// crossing uploaded in each mode (first dirty round; compression off
	// so they track payload). BytesRatio = delta/full, the headline
	// saving; the ≤ 0.15 gate lives in ginja-benchjson.
	FullRedumpBytes    int64   `json:"full_redump_bytes"`
	DeltaBytes         int64   `json:"delta_bytes"`
	BytesRatio         float64 `json:"bytes_ratio"`
	FullRedumpUploadMs float64 `json:"full_redump_upload_ms"`
	DeltaUploadMs      float64 `json:"delta_upload_ms"`
	// GateBytesFull / GateBytesDelta are the raw bytes the dump plan
	// reads while the stop-writes gate covers its files — the quantity
	// the gate window is proportional to (local reads are memory-speed
	// on the sim FS, so the window is reported in bytes, not virtual ms).
	GateBytesFull  int64   `json:"gate_bytes_full"`
	GateBytesDelta int64   `json:"gate_bytes_delta"`
	GateRatio      float64 `json:"gate_ratio"`
	// ChainLen is the delta-chain length the final recovery resolved
	// (== Rounds == MaxDeltaChain). ChainRecoveryMs restores base +
	// chain + WAL tail; BaseRecoveryMs restores the full-run store whose
	// newest object is a single fresh dump. RecoveryRatio = chain/base;
	// the ≤ 2 gate lives in ginja-benchjson.
	ChainLen        int     `json:"chain_len"`
	ChainRecoveryMs float64 `json:"chain_recovery_ms"`
	BaseRecoveryMs  float64 `json:"base_recovery_ms"`
	RecoveryRatio   float64 `json:"recovery_ratio"`
	// RecoveredIdentical: both disaster recoveries materialized their
	// primary's final data files byte-for-byte — for the chain run, base
	// + every delta + the WAL tail resolved to exactly the primary's
	// pages. (Cross-format byte-identity on a deterministic workload is
	// pinned separately by TestDeltaChainPrefixProperty in internal/core.)
	RecoveredIdentical bool `json:"recovered_identical"`
	// CheckpointBytesSaved is the run's cumulative Stats counter: bytes a
	// full re-dump would have shipped minus what the deltas shipped.
	CheckpointBytesSaved int64 `json:"checkpoint_bytes_saved"`
	// Streaming peak of the delta run against the same bound the classic
	// data path honours (2 × uploaders × MaxObjectSize): deltas must not
	// change the O(uploaders × part) memory guarantee.
	PeakStreamBytes int64 `json:"peak_stream_bytes"`
	BoundBytes      int64 `json:"bound_bytes"`
	WithinBound     bool  `json:"within_bound"`
}

// deltaBenchRun is one scenario's outcome.
type deltaBenchRun struct {
	store           *cloud.MemStore
	firstBytes      int64 // sealed DB bytes uploaded by the first dirty round
	firstMs         float64
	gateBytes       int64 // raw bytes read under the gate in that round
	localDBBytes    int64
	chainLen        int
	bytesSaved      int64
	peakStream      int64
	recoveryMs      float64
	recoveredOK     bool // recovery materialized the primary's data files byte-for-byte
	recoveryObjects int
}

// measureDeltaScenario runs boot → bulk fill → base dump → Rounds ×
// (dirty 1 % → checkpoint → crossing) → disaster recovery, with or
// without delta checkpoints, entirely in virtual time.
func measureDeltaScenario(opts DeltaBenchOptions, deltas bool) (*deltaBenchRun, error) {
	out := &deltaBenchRun{}
	clk := simclock.NewSim()
	stopPump := clk.Pump()
	defer stopPump()

	mem := cloud.NewMemStore()
	out.store = mem
	store := cloudsim.New(mem, cloudsim.Options{
		Profile: datapathProfile(),
		Clock:   clk,
		Seed:    1,
	})

	params := core.DefaultParams()
	params.Clock = clk
	params.Batch = 4
	params.Safety = 4096
	params.BatchTimeout = 50 * time.Millisecond
	params.SafetyTimeout = 2 * time.Minute
	params.RetryBaseDelay = 20 * time.Millisecond
	params.DumpThreshold = 1.0 // every checkpoint settle crosses the rule
	params.MaxObjectSize = opts.MaxObjectSize
	params.CheckpointUploaders = opts.Parallel
	params.RecoveryFetchers = opts.Parallel
	params.Compress = false // sealed sizes track payload byte-for-byte
	if deltas {
		params.DeltaCheckpoints = true
		params.MaxDeltaChain = opts.Rounds // the final chain is maximum-length
	}

	ctx := context.Background()
	localFS := vfs.NewMemFS()
	g, err := core.New(localFS, store, dbevent.NewPGProcessor(), params)
	if err != nil {
		return nil, err
	}
	if err := g.Boot(ctx); err != nil {
		return nil, fmt.Errorf("boot: %w", err)
	}
	db, err := minidb.Open(g.FS(), pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
	if err != nil {
		return nil, err
	}
	if err := db.CreateTable("kv", 4); err != nil {
		return nil, err
	}
	value := bytes.Repeat([]byte("v"), opts.ValueBytes)
	for i := 0; i < opts.Rows; i++ {
		key := fmt.Sprintf("key-%06d", i)
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte(key), value)
		}); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	if !g.Flush(5 * time.Minute) {
		return nil, fmt.Errorf("bulk flush did not drain")
	}

	// Settle one checkpoint to establish the base: the crossing finds the
	// whole database dirty, so both modes serve it with a full dump (the
	// delta run's compaction bound folds an all-dirty "delta" away).
	waitCounter := func(read func(core.Stats) int64) error {
		before := read(g.Stats())
		if err := db.Checkpoint(); err != nil {
			return err
		}
		for tries := 0; read(g.Stats()) == before; tries++ {
			if err := g.Err(); err != nil {
				return fmt.Errorf("replication failed: %w", err)
			}
			if tries > 100000 {
				return fmt.Errorf("checkpoint crossing never completed")
			}
			clk.Sleep(5 * time.Millisecond)
		}
		return nil
	}
	if err := waitCounter(func(s core.Stats) int64 { return s.Dumps }); err != nil {
		return nil, fmt.Errorf("base dump: %w", err)
	}

	// Size the settled database: the bytes a full re-dump reads under the
	// stop-writes gate and ships per crossing.
	proc := dbevent.NewPGProcessor()
	files, err := vfs.Walk(localFS, "")
	if err != nil {
		return nil, err
	}
	for _, p := range files {
		if proc.FileKind(p) != dbevent.KindData {
			continue
		}
		fi, err := localFS.Stat(p)
		if err != nil {
			return nil, err
		}
		out.localDBBytes += fi.Size()
	}

	// The dirty rounds: rewrite a clustered 1 % of the rows, checkpoint,
	// and let the crossing ship a delta (or a full re-dump). Round 1 is
	// the measured crossing.
	counter := func(s core.Stats) int64 { return s.Dumps }
	if deltas {
		counter = func(s core.Stats) int64 { return s.Deltas }
	}
	for round := 1; round <= opts.Rounds; round++ {
		for i := 0; i < opts.DirtyRows; i++ {
			key := fmt.Sprintf("key-%06d", i)
			val := []byte(fmt.Sprintf("round-%d-%s", round, value))
			if err := db.Update(func(tx *minidb.Txn) error {
				return tx.Put("kv", []byte(key), val)
			}); err != nil {
				return nil, err
			}
		}
		if !g.Flush(5 * time.Minute) {
			return nil, fmt.Errorf("round %d flush did not drain", round)
		}
		statsBefore := g.Stats()
		t0 := clk.Now()
		if err := waitCounter(counter); err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		if round == 1 {
			statsAfter := g.Stats()
			out.firstBytes = statsAfter.DBBytesUploaded - statsBefore.DBBytesUploaded
			out.firstMs = float64(clk.Since(t0)) / float64(time.Millisecond)
			if deltas {
				// The delta's raw planned payload is what its gate covered:
				// localSize minus what skipping the clean pages saved.
				out.gateBytes = out.localDBBytes - (statsAfter.CheckpointBytesSaved - statsBefore.CheckpointBytesSaved)
			} else {
				out.gateBytes = out.localDBBytes
			}
		}
	}
	if err := g.Close(); err != nil { // drains uploads + GC deterministically
		return nil, fmt.Errorf("close: %w", err)
	}
	final := g.Stats()
	out.chainLen = final.DeltaChainLen
	out.bytesSaved = final.CheckpointBytesSaved
	out.peakStream = final.PeakStreamBytes

	// Disaster recovery on a fresh machine: the delta store resolves base
	// + maximum-length chain, the full store a single fresh dump.
	g2, err := core.New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		return nil, err
	}
	target := vfs.NewMemFS()
	t1 := clk.Now()
	if err := g2.RecoverAt(ctx, target, -1); err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	out.recoveryMs = float64(clk.Since(t1)) / float64(time.Millisecond)
	// Recovery's correctness contract: the rebuilt machine's data files
	// are byte-identical to the primary's. For the delta run this is the
	// whole point — base + every chained delta + the WAL tail must
	// materialize exactly the pages the primary holds.
	out.recoveredOK = true
	finalFiles, err := vfs.Walk(localFS, "")
	if err != nil {
		return nil, err
	}
	for _, p := range finalFiles {
		if proc.FileKind(p) != dbevent.KindData {
			continue
		}
		want, err := vfs.ReadFile(localFS, p)
		if err != nil {
			return nil, err
		}
		got, err := vfs.ReadFile(target, p)
		if err != nil || !bytes.Equal(got, want) {
			out.recoveredOK = false
		}
	}
	return out, nil
}

// RunDeltaBench runs the paired delta/full scenarios and folds them into
// the comparison the gates check.
func RunDeltaBench(opts DeltaBenchOptions) (*DeltaBenchResult, error) {
	opts = opts.withDefaults()
	dr, err := measureDeltaScenario(opts, true)
	if err != nil {
		return nil, fmt.Errorf("delta run: %w", err)
	}
	fr, err := measureDeltaScenario(opts, false)
	if err != nil {
		return nil, fmt.Errorf("full-dump run: %w", err)
	}
	res := &DeltaBenchResult{
		Rows:                 opts.Rows,
		DirtyRows:            opts.DirtyRows,
		LocalDBBytes:         dr.localDBBytes,
		FullRedumpBytes:      fr.firstBytes,
		DeltaBytes:           dr.firstBytes,
		FullRedumpUploadMs:   fr.firstMs,
		DeltaUploadMs:        dr.firstMs,
		GateBytesFull:        fr.gateBytes,
		GateBytesDelta:       dr.gateBytes,
		ChainLen:             dr.chainLen,
		ChainRecoveryMs:      dr.recoveryMs,
		BaseRecoveryMs:       fr.recoveryMs,
		CheckpointBytesSaved: dr.bytesSaved,
		PeakStreamBytes:      dr.peakStream,
		BoundBytes:           2 * int64(opts.Parallel) * opts.MaxObjectSize,
	}
	if res.FullRedumpBytes > 0 {
		res.BytesRatio = float64(res.DeltaBytes) / float64(res.FullRedumpBytes)
	}
	if res.GateBytesFull > 0 {
		res.GateRatio = float64(res.GateBytesDelta) / float64(res.GateBytesFull)
	}
	if res.BaseRecoveryMs > 0 {
		res.RecoveryRatio = res.ChainRecoveryMs / res.BaseRecoveryMs
	}
	res.WithinBound = res.PeakStreamBytes > 0 && res.PeakStreamBytes <= res.BoundBytes
	res.RecoveredIdentical = dr.recoveredOK && fr.recoveredOK
	return res, nil
}
