package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/costmodel"
)

// FprintFigure1 renders the $1/month capacity frontier (Figure 1).
func FprintFigure1(w io.Writer, budget float64) {
	prices := cloud.AmazonS3May2017()
	fmt.Fprintf(w, "Figure 1 — database size vs cloud synchronizations/hour with a $%.2f/month budget (S3 May-2017 prices)\n", budget)
	fmt.Fprintf(w, "%-22s %s\n", "syncs/hour", "max DB size (GB)")
	for _, s := range []float64{10, 25, 50, 75, 100, 120, 150, 200, 240, 250} {
		gb := costmodel.OneDollarMaxDBSizeGB(budget, s, prices)
		fmt.Fprintf(w, "%-22.0f %.1f\n", s, gb)
	}
	fmt.Fprintln(w, "Paper setups: A ≈ 35 GB @ 50/h, B ≈ 20 GB @ 120/h, C ≈ 4.3 GB @ 240/h")
}

// FprintFigure2 renders the Batch/Safety demonstration.
func FprintFigure2(w io.Writer, res Figure2Result) {
	fmt.Fprintf(w, "Figure 2 — B=%d, S=%d: %d updates, %d cloud synchronizations\n",
		res.B, res.S, len(res.PerUpdateBlocked), res.Batches)
	for i, d := range res.PerUpdateBlocked {
		marker := ""
		if d > 50*time.Millisecond {
			marker = "  ← DBMS blocked (Safety limit reached)"
		}
		fmt.Fprintf(w, "U%-3d blocked %8s%s\n", i+1, d.Round(time.Millisecond), marker)
	}
}

// FprintFigure4 renders the cost-vs-workload curves (Figure 4).
func FprintFigure4(w io.Writer) {
	prices := cloud.AmazonS3May2017()
	fmt.Fprintln(w, "Figure 4 — monthly cost vs workload, 10 GB database, S3 (log-log in the paper)")
	fmt.Fprintf(w, "%-18s %-12s %-12s %-12s\n", "updates/minute", "B=10", "B=100", "B=1000")
	for _, wl := range []float64{10, 30, 100, 300, 1000} {
		fmt.Fprintf(w, "%-18.0f", wl)
		for _, b := range []float64{10, 100, 1000} {
			d := costmodel.PaperEvaluationDeployment()
			d.UpdatesPerMinute = wl
			d.Batch = b
			fmt.Fprintf(w, " $%-11.3f", costmodel.Monthly(d, prices).Total())
		}
		fmt.Fprintln(w)
	}
}

// FprintTable2 renders the real-application cost comparison (Table 2).
func FprintTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2 — cloud DR cost: Ginja (S3) vs database replica VMs (EC2), $/month")
	fmt.Fprintf(w, "%-14s %-12s %-12s %-14s %s\n", "configuration", "syncs/min", "Ginja", "EC2 VM", "savings")
	for _, row := range costmodel.Table2(cloud.AmazonS3May2017()) {
		fmt.Fprintf(w, "%-14s %-12.0f $%-11.2f $%-13.1f %.0f×\n",
			row.Scenario, row.SyncsMin, row.Ginja, row.VM, row.Savings)
	}
}

// FprintRecoveryCosts renders §7.3's recovery-cost estimates.
func FprintRecoveryCosts(w io.Writer) {
	prices := cloud.AmazonS3May2017()
	fmt.Fprintln(w, "§7.3 — cost of recovery (download of all DB and WAL objects)")
	for _, s := range []costmodel.Scenario{costmodel.Laboratory(1), costmodel.Hospital(1)} {
		out := costmodel.RecoveryCost(s.Deployment(), prices, false)
		fmt.Fprintf(w, "%-14s to on-premises: $%.3f   to in-region VM: $%.3f\n",
			s.Name, out, costmodel.RecoveryCost(s.Deployment(), prices, true))
	}
}

// FprintFigure5 renders one engine's throughput grid.
func FprintFigure5(w io.Writer, engine string, rows []Figure5Row) {
	fmt.Fprintf(w, "Figure 5 (%s) — TPC-C throughput under Ginja configurations\n", engine)
	fmt.Fprintf(w, "%-22s %-12s %-12s\n", "configuration", "Tpm-C", "Tpm-Total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-12.0f %-12.0f\n", r.Cell.Label, r.TpmC, r.TpmTotal)
	}
}

// FprintFigure6 renders one engine's compression/encryption grid.
func FprintFigure6(w io.Writer, engine string, rows []Figure6Row) {
	fmt.Fprintf(w, "Figure 6 (%s) — compression & encryption effect on TPC-C throughput\n", engine)
	fmt.Fprintf(w, "%-22s %-12s %-12s\n", "configuration", "Tpm-C", "Tpm-Total")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-12.0f %-12.0f\n", r.Cell.Label, r.TpmC, r.TpmTotal)
	}
}

// FprintTable3 renders the cloud-usage table.
func FprintTable3(w io.Writer, engine string, rows []Table3Row, window time.Duration) {
	fmt.Fprintf(w, "Table 3 (%s) — storage-cloud usage (PUT count normalised to 5 min; measured window %s)\n",
		engine, window)
	fmt.Fprintf(w, "%-22s %-14s %-16s %-16s\n", "configuration", "num PUTs", "object size (kB)", "PUT latency (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-14d %-16.0f %-16.0f\n", r.Config, r.NumPUTs, r.ObjectSizeKB, r.PutLatencyMS)
	}
}

// FprintTable4 renders the resource-usage table.
func FprintTable4(w io.Writer, engine string, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4 (%s) — database server resource usage (32 GB reference server)\n", engine)
	fmt.Fprintf(w, "%-18s %-10s %-10s\n", "configuration", "CPU", "memory")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-10.1f%% %-10.2f%%\n", r.Config, r.CPUPercent, r.MemPercent)
	}
}

// FprintFigure7 renders the recovery-time series.
func FprintFigure7(w io.Writer, rows []Figure7Row) {
	fmt.Fprintln(w, "Figure 7 — recovery time by database size (modelled network time)")
	fmt.Fprintf(w, "%-14s %-18s %-18s %-14s %s\n",
		"warehouses", "on-premises", "EC2 in-region", "bytes", "objects")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14d %-18s %-18s %-14d %d\n",
			r.Warehouses, r.OnPremises.Round(100*time.Millisecond),
			r.InRegionVM.Round(10*time.Millisecond),
			r.BytesOnPrem, r.ObjectsOnPrem)
	}
}
