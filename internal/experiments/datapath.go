package experiments

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// This file measures the parallel DB-object data path: how much virtual
// wall clock a multi-part dump upload and a full disaster recovery cost
// at a given parallelism, on the deterministic simulated cloud. Because
// every cloud request sleeps on the virtual clock, N concurrent requests
// with the same deadline cost one latency of virtual time — so the
// serial-vs-parallel ratio measured here is exactly the latency-hiding
// win, free of scheduler noise.

// DatapathOptions configures one dump+recovery measurement.
type DatapathOptions struct {
	// Rows and ValueBytes size the database (and therefore the dump).
	Rows       int
	ValueBytes int
	// MaxObjectSize splits the dump into parts. Keep it small relative to
	// Rows*ValueBytes so several parts exist.
	MaxObjectSize int64
	// Parallel is the CheckpointUploaders/RecoveryFetchers setting of the
	// parallel run (the serial run always uses 1). Default 5.
	Parallel int
}

func (o DatapathOptions) withDefaults() DatapathOptions {
	if o.Rows == 0 {
		o.Rows = 220
	}
	if o.ValueBytes == 0 {
		o.ValueBytes = 512
	}
	if o.MaxObjectSize == 0 {
		o.MaxObjectSize = 16 << 10
	}
	if o.Parallel == 0 {
		o.Parallel = 5
	}
	return o
}

// DatapathRun is one measured configuration.
type DatapathRun struct {
	Parallelism int `json:"parallelism"`
	// DumpUploadMs is the virtual time from checkpoint submission to the
	// dump being durable (all parts PUT, view updated; GC excluded).
	DumpUploadMs float64 `json:"dump_upload_ms"`
	// RecoveryMs is the virtual time RecoverAt spent rebuilding a fresh
	// machine (LIST + all GETs + apply).
	RecoveryMs float64 `json:"recovery_ms"`
	// DumpParts is how many parts the measured dump split into.
	DumpParts int `json:"dump_parts"`
	// RecoveryObjects is how many cloud objects recovery fetched.
	RecoveryObjects int `json:"recovery_objects"`
}

// StreamingResult reports the streamed part-sealed data path: the memory
// high-water mark of the parallel dump against its O(uploaders ×
// MaxObjectSize) bound, and backwards compatibility with legacy
// whole-sealed multi-part objects.
type StreamingResult struct {
	Parallelism int `json:"parallelism"`
	// DumpParts is how many part-sealed parts the measured dump produced.
	DumpParts    int     `json:"dump_parts"`
	DumpUploadMs float64 `json:"dump_upload_ms"`
	// LocalDBBytes is the local database size at dump time — the O(DB)
	// quantity the old data path kept resident.
	LocalDBBytes int64 `json:"local_db_bytes"`
	// PeakStreamBytes is the measured high-water mark of payload+sealed
	// bytes resident in the streaming data path.
	PeakStreamBytes int64 `json:"peak_stream_bytes"`
	// BoundBytes is 2 × CheckpointUploaders × MaxObjectSize; WithinBound
	// asserts PeakStreamBytes stayed under it.
	BoundBytes  int64 `json:"bound_bytes"`
	WithinBound bool  `json:"within_bound"`
	// QueueBytesAfter is ginja_checkpoint_queue_bytes after the dump
	// drained (must return to zero — no payload leaks in the accounting).
	QueueBytesAfter int64 `json:"queue_bytes_after"`
	// LegacyRecoveryOK: a hand-built legacy whole-sealed multi-part dump
	// (".p<part>" names, one MAC over the reassembled object) recovered
	// end-to-end byte-identically.
	LegacyRecoveryOK bool `json:"legacy_recovery_ok"`
}

// DatapathResult is the serial-vs-parallel comparison plus the sealer
// allocation profile, the machine-readable content of BENCH_datapath.json.
type DatapathResult struct {
	Serial          DatapathRun `json:"serial"`
	Parallel        DatapathRun `json:"parallel"`
	DumpSpeedup     float64     `json:"dump_speedup"`
	RecoverySpeedup float64     `json:"recovery_speedup"`
	// SealAllocsPerOp is allocations per Sealer.Seal call on the
	// compressed path (the hot steady-state configuration).
	SealAllocsPerOp float64 `json:"seal_allocs_per_op"`
	// OpenAllocsPerOp is allocations per Sealer.Open on the same path.
	OpenAllocsPerOp float64 `json:"open_allocs_per_op"`
	// Streaming covers the part-sealed streamed data path (taken from the
	// parallel run).
	Streaming StreamingResult `json:"streaming"`
	// DeltaCheckpoint compares incremental delta checkpoints against full
	// re-dumps on a 1 %-dirty workload (see deltabench.go).
	DeltaCheckpoint *DeltaBenchResult `json:"delta_checkpoint"`
}

// datapathProfile is the WAN model used for the measurement: the sim
// package's shape with jitter removed so both runs see identical latency.
func datapathProfile() cloudsim.Profile {
	return cloudsim.Profile{
		BaseLatency:       40 * time.Millisecond,
		UploadBandwidth:   8e6,
		DownloadBandwidth: 30e6,
		JitterFraction:    0,
	}
}

// streamSample captures the streaming-path observations of one run.
type streamSample struct {
	peakStreamBytes int64
	localDBBytes    int64
	queueBytesAfter int64
}

// measureDatapath runs one full scenario — boot, workload, dump,
// disaster recovery — at the given parallelism, all in virtual time.
func measureDatapath(opts DatapathOptions, parallel int) (DatapathRun, streamSample, error) {
	run := DatapathRun{Parallelism: parallel}
	var sample streamSample
	clk := simclock.NewSim()
	stopPump := clk.Pump()
	defer stopPump()

	store := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
		Profile: datapathProfile(),
		Clock:   clk,
		Seed:    1,
	})

	params := core.DefaultParams()
	params.Clock = clk
	params.Batch = 4
	params.Safety = 4096
	params.BatchTimeout = 50 * time.Millisecond
	params.SafetyTimeout = 2 * time.Minute
	params.RetryBaseDelay = 20 * time.Millisecond
	params.DumpThreshold = 1.0 // the measured checkpoint becomes a dump
	params.MaxObjectSize = opts.MaxObjectSize
	params.CheckpointUploaders = parallel
	params.RecoveryFetchers = parallel

	ctx := context.Background()
	localFS := vfs.NewMemFS()
	g, err := core.New(localFS, store, dbevent.NewPGProcessor(), params)
	if err != nil {
		return run, sample, err
	}
	if err := g.Boot(ctx); err != nil {
		return run, sample, fmt.Errorf("boot: %w", err)
	}
	db, err := minidb.Open(g.FS(), pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
	if err != nil {
		return run, sample, err
	}
	if err := db.CreateTable("kv", 4); err != nil {
		return run, sample, err
	}
	value := bytes.Repeat([]byte("v"), opts.ValueBytes)
	for i := 0; i < opts.Rows; i++ {
		key := fmt.Sprintf("key-%06d", i)
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte(key), value)
		}); err != nil {
			return run, sample, fmt.Errorf("row %d: %w", i, err)
		}
	}
	if !g.Flush(5 * time.Minute) {
		return run, sample, fmt.Errorf("flush did not drain")
	}

	// The measured window: checkpoint submission → dump durable. The
	// Dumps counter increments after the last part PUT and the view
	// update, before garbage collection.
	dumpsBefore := g.Stats().Dumps
	t0 := clk.Now()
	if err := db.Checkpoint(); err != nil {
		return run, sample, err
	}
	for tries := 0; g.Stats().Dumps == dumpsBefore; tries++ {
		if err := g.Err(); err != nil {
			return run, sample, fmt.Errorf("replication failed during dump: %w", err)
		}
		if tries > 100000 {
			return run, sample, fmt.Errorf("dump never completed (checkpoint did not cross DumpThreshold?)")
		}
		clk.Sleep(5 * time.Millisecond)
	}
	run.DumpUploadMs = float64(clk.Since(t0)) / float64(time.Millisecond)
	if err := g.Close(); err != nil { // finishes the dump's GC deterministically
		return run, sample, fmt.Errorf("close: %w", err)
	}
	stats := g.Stats()
	sample.peakStreamBytes = stats.PeakStreamBytes
	sample.queueBytesAfter = stats.CheckpointBytesBuffered

	// Size the local database (the O(DB) quantity the pre-streaming data
	// path kept resident). Sampled after the checkpoint so the engine has
	// flushed its pages into the data files the dump actually streamed.
	proc := dbevent.NewPGProcessor()
	files, err := vfs.Walk(localFS, "")
	if err != nil {
		return run, sample, err
	}
	for _, p := range files {
		if proc.FileKind(p) != dbevent.KindData {
			continue
		}
		fi, err := localFS.Stat(p)
		if err != nil {
			return run, sample, err
		}
		sample.localDBBytes += fi.Size()
	}

	// Count what recovery will fetch (post-GC listing).
	infos, err := store.List(ctx, "")
	if err != nil {
		return run, sample, err
	}
	for _, info := range infos {
		if strings.HasPrefix(info.Name, "DB/") &&
			(strings.Contains(info.Name, ".p") || strings.Contains(info.Name, ".s")) {
			run.DumpParts++
		}
	}
	run.RecoveryObjects = len(infos)

	// Disaster recovery on a fresh machine, same parallelism.
	g2, err := core.New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		return run, sample, err
	}
	t1 := clk.Now()
	if err := g2.RecoverAt(ctx, vfs.NewMemFS(), -1); err != nil {
		return run, sample, fmt.Errorf("recover: %w", err)
	}
	run.RecoveryMs = float64(clk.Since(t1)) / float64(time.Millisecond)
	return run, sample, nil
}

// sealAllocProfile measures allocations per Seal and per Open on the
// compressed path with a dump-part-sized payload, using the runtime's
// allocation counters (so it works outside `go test`).
func sealAllocProfile() (sealAllocs, openAllocs float64, err error) {
	s, err := sealer.New(sealer.Options{Compress: true})
	if err != nil {
		return 0, 0, err
	}
	page := append(bytes.Repeat([]byte{0}, 128), bytes.Repeat([]byte("row-data-0123456789"), 47)...)
	payload := bytes.Repeat(page, 64) // ≈64 KiB
	sealed, err := s.Seal(payload)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < 4; i++ { // warm the pools
		if _, err := s.Seal(payload); err != nil {
			return 0, 0, err
		}
		if _, err := s.Open(sealed); err != nil {
			return 0, 0, err
		}
	}
	const iters = 64
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if _, err := s.Seal(payload); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&after)
	sealAllocs = float64(after.Mallocs-before.Mallocs) / iters
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if _, err := s.Open(sealed); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&after)
	openAllocs = float64(after.Mallocs-before.Mallocs) / iters
	return sealAllocs, openAllocs, nil
}

// legacyRecoveryCheck hand-builds a legacy whole-sealed multi-part dump —
// one payload encoded and sealed once, split into raw ".p<part>" chunks
// whose names carry the total sealed size — and verifies a current Ginja
// recovers it end-to-end byte-identically. This is the format produced
// before the part-sealed data path; buckets written by older versions
// must keep restoring.
func legacyRecoveryCheck(maxObj int64) (bool, error) {
	params := core.DefaultParams()
	params.MaxObjectSize = maxObj
	seal, err := sealer.New(sealer.Options{
		Compress: params.Compress,
		Encrypt:  params.Encrypt,
		Password: params.Password,
	})
	if err != nil {
		return false, err
	}
	// Incompressible deterministic content so the sealed object really
	// splits into several parts even when compression is on.
	big := make([]byte, 3*maxObj)
	x := uint32(2463534242)
	for i := range big {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		big[i] = byte(x)
	}
	writes := []core.FileWrite{
		{Path: "base/1/accounts", Data: big, Whole: true},
		{Path: "base/1/meta", Data: []byte("legacy-format-marker"), Whole: true},
	}
	sealed, err := seal.Seal(core.EncodeWrites(writes))
	if err != nil {
		return false, err
	}
	ctx := context.Background()
	store := cloud.NewMemStore()
	size := int64(len(sealed))
	nParts := int((size + maxObj - 1) / maxObj)
	if nParts < 2 {
		return false, fmt.Errorf("legacy check: sealed dump (%d bytes) did not split at MaxObjectSize %d", size, maxObj)
	}
	for i := 0; i < nParts; i++ {
		lo := int64(i) * maxObj
		hi := lo + maxObj
		if hi > size {
			hi = size
		}
		if err := store.Put(ctx, core.DBObjectName(0, 0, core.Dump, size, i), sealed[lo:hi]); err != nil {
			return false, err
		}
	}
	g, err := core.New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		return false, err
	}
	target := vfs.NewMemFS()
	if err := g.RecoverAt(ctx, target, -1); err != nil {
		return false, fmt.Errorf("legacy recovery: %w", err)
	}
	for _, w := range writes {
		got, err := vfs.ReadFile(target, w.Path)
		if err != nil || !bytes.Equal(got, w.Data) {
			return false, nil
		}
	}
	return true, nil
}

// RunDatapath measures the serial baseline and the parallel data path on
// identical deterministic scenarios and reports the speedups, plus the
// streaming-path memory bound and legacy-format compatibility.
func RunDatapath(opts DatapathOptions) (*DatapathResult, error) {
	opts = opts.withDefaults()
	serial, _, err := measureDatapath(opts, 1)
	if err != nil {
		return nil, fmt.Errorf("serial run: %w", err)
	}
	parallel, sample, err := measureDatapath(opts, opts.Parallel)
	if err != nil {
		return nil, fmt.Errorf("parallel run: %w", err)
	}
	res := &DatapathResult{Serial: serial, Parallel: parallel}
	if parallel.DumpUploadMs > 0 {
		res.DumpSpeedup = serial.DumpUploadMs / parallel.DumpUploadMs
	}
	if parallel.RecoveryMs > 0 {
		res.RecoverySpeedup = serial.RecoveryMs / parallel.RecoveryMs
	}
	res.SealAllocsPerOp, res.OpenAllocsPerOp, err = sealAllocProfile()
	if err != nil {
		return nil, err
	}
	bound := 2 * int64(opts.Parallel) * opts.MaxObjectSize
	res.Streaming = StreamingResult{
		Parallelism:     opts.Parallel,
		DumpParts:       parallel.DumpParts,
		DumpUploadMs:    parallel.DumpUploadMs,
		LocalDBBytes:    sample.localDBBytes,
		PeakStreamBytes: sample.peakStreamBytes,
		BoundBytes:      bound,
		WithinBound:     sample.peakStreamBytes > 0 && sample.peakStreamBytes <= bound,
		QueueBytesAfter: sample.queueBytesAfter,
	}
	res.Streaming.LegacyRecoveryOK, err = legacyRecoveryCheck(opts.MaxObjectSize)
	if err != nil {
		return nil, fmt.Errorf("legacy-format check: %w", err)
	}
	// The delta-checkpoint comparison scales off the same knobs: a larger
	// database than the dump measurement (deltas only matter when the
	// base dwarfs the dirty set) at the same part size and parallelism.
	dopts := DeltaBenchOptions{
		Rows:          4 * opts.Rows,
		MaxObjectSize: opts.MaxObjectSize,
		Parallel:      opts.Parallel,
	}
	if opts.Rows < 100 { // smoke scenario: fewer crossings, shorter chain
		dopts.Rounds = 3
	}
	res.DeltaCheckpoint, err = RunDeltaBench(dopts)
	if err != nil {
		return nil, fmt.Errorf("delta-checkpoint bench: %w", err)
	}
	return res, nil
}
