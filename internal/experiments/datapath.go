package experiments

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/sealer"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// This file measures the parallel DB-object data path: how much virtual
// wall clock a multi-part dump upload and a full disaster recovery cost
// at a given parallelism, on the deterministic simulated cloud. Because
// every cloud request sleeps on the virtual clock, N concurrent requests
// with the same deadline cost one latency of virtual time — so the
// serial-vs-parallel ratio measured here is exactly the latency-hiding
// win, free of scheduler noise.

// DatapathOptions configures one dump+recovery measurement.
type DatapathOptions struct {
	// Rows and ValueBytes size the database (and therefore the dump).
	Rows       int
	ValueBytes int
	// MaxObjectSize splits the dump into parts. Keep it small relative to
	// Rows*ValueBytes so several parts exist.
	MaxObjectSize int64
	// Parallel is the CheckpointUploaders/RecoveryFetchers setting of the
	// parallel run (the serial run always uses 1). Default 5.
	Parallel int
}

func (o DatapathOptions) withDefaults() DatapathOptions {
	if o.Rows == 0 {
		o.Rows = 220
	}
	if o.ValueBytes == 0 {
		o.ValueBytes = 512
	}
	if o.MaxObjectSize == 0 {
		o.MaxObjectSize = 16 << 10
	}
	if o.Parallel == 0 {
		o.Parallel = 5
	}
	return o
}

// DatapathRun is one measured configuration.
type DatapathRun struct {
	Parallelism int `json:"parallelism"`
	// DumpUploadMs is the virtual time from checkpoint submission to the
	// dump being durable (all parts PUT, view updated; GC excluded).
	DumpUploadMs float64 `json:"dump_upload_ms"`
	// RecoveryMs is the virtual time RecoverAt spent rebuilding a fresh
	// machine (LIST + all GETs + apply).
	RecoveryMs float64 `json:"recovery_ms"`
	// DumpParts is how many parts the measured dump split into.
	DumpParts int `json:"dump_parts"`
	// RecoveryObjects is how many cloud objects recovery fetched.
	RecoveryObjects int `json:"recovery_objects"`
}

// DatapathResult is the serial-vs-parallel comparison plus the sealer
// allocation profile, the machine-readable content of BENCH_datapath.json.
type DatapathResult struct {
	Serial          DatapathRun `json:"serial"`
	Parallel        DatapathRun `json:"parallel"`
	DumpSpeedup     float64     `json:"dump_speedup"`
	RecoverySpeedup float64     `json:"recovery_speedup"`
	// SealAllocsPerOp is allocations per Sealer.Seal call on the
	// compressed path (the hot steady-state configuration).
	SealAllocsPerOp float64 `json:"seal_allocs_per_op"`
	// OpenAllocsPerOp is allocations per Sealer.Open on the same path.
	OpenAllocsPerOp float64 `json:"open_allocs_per_op"`
}

// datapathProfile is the WAN model used for the measurement: the sim
// package's shape with jitter removed so both runs see identical latency.
func datapathProfile() cloudsim.Profile {
	return cloudsim.Profile{
		BaseLatency:       40 * time.Millisecond,
		UploadBandwidth:   8e6,
		DownloadBandwidth: 30e6,
		JitterFraction:    0,
	}
}

// measureDatapath runs one full scenario — boot, workload, dump,
// disaster recovery — at the given parallelism, all in virtual time.
func measureDatapath(opts DatapathOptions, parallel int) (DatapathRun, error) {
	run := DatapathRun{Parallelism: parallel}
	clk := simclock.NewSim()
	stopPump := clk.Pump()
	defer stopPump()

	store := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{
		Profile: datapathProfile(),
		Clock:   clk,
		Seed:    1,
	})

	params := core.DefaultParams()
	params.Clock = clk
	params.Batch = 4
	params.Safety = 4096
	params.BatchTimeout = 50 * time.Millisecond
	params.SafetyTimeout = 2 * time.Minute
	params.RetryBaseDelay = 20 * time.Millisecond
	params.DumpThreshold = 1.0 // the measured checkpoint becomes a dump
	params.MaxObjectSize = opts.MaxObjectSize
	params.CheckpointUploaders = parallel
	params.RecoveryFetchers = parallel

	ctx := context.Background()
	localFS := vfs.NewMemFS()
	g, err := core.New(localFS, store, dbevent.NewPGProcessor(), params)
	if err != nil {
		return run, err
	}
	if err := g.Boot(ctx); err != nil {
		return run, fmt.Errorf("boot: %w", err)
	}
	db, err := minidb.Open(g.FS(), pgengine.NewWithSizes(512, 8192, 1024), minidb.Options{})
	if err != nil {
		return run, err
	}
	if err := db.CreateTable("kv", 4); err != nil {
		return run, err
	}
	value := bytes.Repeat([]byte("v"), opts.ValueBytes)
	for i := 0; i < opts.Rows; i++ {
		key := fmt.Sprintf("key-%06d", i)
		if err := db.Update(func(tx *minidb.Txn) error {
			return tx.Put("kv", []byte(key), value)
		}); err != nil {
			return run, fmt.Errorf("row %d: %w", i, err)
		}
	}
	if !g.Flush(5 * time.Minute) {
		return run, fmt.Errorf("flush did not drain")
	}

	// The measured window: checkpoint submission → dump durable. The
	// Dumps counter increments after the last part PUT and the view
	// update, before garbage collection.
	dumpsBefore := g.Stats().Dumps
	t0 := clk.Now()
	if err := db.Checkpoint(); err != nil {
		return run, err
	}
	for tries := 0; g.Stats().Dumps == dumpsBefore; tries++ {
		if err := g.Err(); err != nil {
			return run, fmt.Errorf("replication failed during dump: %w", err)
		}
		if tries > 100000 {
			return run, fmt.Errorf("dump never completed (checkpoint did not cross DumpThreshold?)")
		}
		clk.Sleep(5 * time.Millisecond)
	}
	run.DumpUploadMs = float64(clk.Since(t0)) / float64(time.Millisecond)
	if err := g.Close(); err != nil { // finishes the dump's GC deterministically
		return run, fmt.Errorf("close: %w", err)
	}

	// Count what recovery will fetch (post-GC listing).
	infos, err := store.List(ctx, "")
	if err != nil {
		return run, err
	}
	for _, info := range infos {
		if strings.HasPrefix(info.Name, "DB/") && strings.Contains(info.Name, ".p") {
			run.DumpParts++
		}
	}
	run.RecoveryObjects = len(infos)

	// Disaster recovery on a fresh machine, same parallelism.
	g2, err := core.New(vfs.NewMemFS(), store, dbevent.NewPGProcessor(), params)
	if err != nil {
		return run, err
	}
	t1 := clk.Now()
	if err := g2.RecoverAt(ctx, vfs.NewMemFS(), -1); err != nil {
		return run, fmt.Errorf("recover: %w", err)
	}
	run.RecoveryMs = float64(clk.Since(t1)) / float64(time.Millisecond)
	return run, nil
}

// sealAllocProfile measures allocations per Seal and per Open on the
// compressed path with a dump-part-sized payload, using the runtime's
// allocation counters (so it works outside `go test`).
func sealAllocProfile() (sealAllocs, openAllocs float64, err error) {
	s, err := sealer.New(sealer.Options{Compress: true})
	if err != nil {
		return 0, 0, err
	}
	page := append(bytes.Repeat([]byte{0}, 128), bytes.Repeat([]byte("row-data-0123456789"), 47)...)
	payload := bytes.Repeat(page, 64) // ≈64 KiB
	sealed, err := s.Seal(payload)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < 4; i++ { // warm the pools
		if _, err := s.Seal(payload); err != nil {
			return 0, 0, err
		}
		if _, err := s.Open(sealed); err != nil {
			return 0, 0, err
		}
	}
	const iters = 64
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if _, err := s.Seal(payload); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&after)
	sealAllocs = float64(after.Mallocs-before.Mallocs) / iters
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		if _, err := s.Open(sealed); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&after)
	openAllocs = float64(after.Mallocs-before.Mallocs) / iters
	return sealAllocs, openAllocs, nil
}

// RunDatapath measures the serial baseline and the parallel data path on
// identical deterministic scenarios and reports the speedups.
func RunDatapath(opts DatapathOptions) (*DatapathResult, error) {
	opts = opts.withDefaults()
	serial, err := measureDatapath(opts, 1)
	if err != nil {
		return nil, fmt.Errorf("serial run: %w", err)
	}
	parallel, err := measureDatapath(opts, opts.Parallel)
	if err != nil {
		return nil, fmt.Errorf("parallel run: %w", err)
	}
	res := &DatapathResult{Serial: serial, Parallel: parallel}
	if parallel.DumpUploadMs > 0 {
		res.DumpSpeedup = serial.DumpUploadMs / parallel.DumpUploadMs
	}
	if parallel.RecoveryMs > 0 {
		res.RecoverySpeedup = serial.RecoveryMs / parallel.RecoveryMs
	}
	res.SealAllocsPerOp, res.OpenAllocsPerOp, err = sealAllocProfile()
	if err != nil {
		return nil, err
	}
	return res, nil
}
