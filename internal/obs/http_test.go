package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
)

func getBody(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

// TestHealthzFlipsDuringOutage drives a cloudsim outage through an
// instrumented store and watches /healthz flip 200 → 503 → 200.
func TestHealthzFlipsDuringOutage(t *testing.T) {
	reg := NewRegistry()
	sim := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	store := InstrumentStore(sim, reg, "cloud")
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()
	ctx := context.Background()

	if err := store.Put(ctx, "wal/1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if code, body := getBody(t, srv, "/healthz"); code != 200 {
		t.Fatalf("healthy store: /healthz = %d\n%s", code, body)
	}

	sim.StartOutage()
	// Health has flap hysteresis: it takes DefaultHealthThreshold
	// consecutive failures to trip, so drive that many failing ops.
	for i := 0; i < DefaultHealthThreshold; i++ {
		if err := store.Put(ctx, "wal/2", []byte("x")); err == nil {
			t.Fatal("Put during outage should fail")
		}
	}
	if _, err := store.Get(ctx, "wal/1"); err == nil {
		t.Fatal("Get during outage should fail")
	}
	code, body := getBody(t, srv, "/healthz")
	if code != 503 {
		t.Fatalf("during outage: /healthz = %d, want 503\n%s", code, body)
	}
	var health struct {
		Status string `json:"status"`
		Checks []struct {
			Name  string `json:"name"`
			OK    bool   `json:"ok"`
			Error string `json:"error"`
		} `json:"checks"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz body not JSON: %v\n%s", err, body)
	}
	if health.Status != "unhealthy" {
		t.Fatalf("status = %q, want unhealthy", health.Status)
	}
	found := false
	for _, c := range health.Checks {
		if c.Name == "store:cloud" {
			found = true
			if c.OK || !strings.Contains(c.Error, "outage") {
				t.Fatalf("store check = %+v, want failing with outage error", c)
			}
		}
	}
	if !found {
		t.Fatalf("no store:cloud check in %s", body)
	}

	sim.EndOutage()
	if err := store.Put(ctx, "wal/3", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if code, body := getBody(t, srv, "/healthz"); code != 200 {
		t.Fatalf("after outage: /healthz = %d, want 200\n%s", code, body)
	}
}

// TestMetricsAndStatusz checks the other two endpoints end to end: the
// instrumented store's series appear on /metrics and /statusz carries the
// caller-supplied status value plus the metric snapshots.
func TestMetricsAndStatusz(t *testing.T) {
	reg := NewRegistry()
	store := InstrumentStore(cloud.NewMemStore(), reg, "mem")
	ctx := context.Background()
	if err := store.Put(ctx, "obj", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(ctx, "missing"); err == nil {
		t.Fatal("want not-found")
	}

	srv := httptest.NewServer(Handler(reg, func() any {
		return map[string]int{"updates": 42}
	}))
	defer srv.Close()

	code, body := getBody(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`ginja_cloud_ops_total{backend="mem",op="put"} 1`,
		`ginja_cloud_ops_total{backend="mem",op="get"} 1`,
		// not-found is not an error
		`ginja_cloud_op_errors_total{backend="mem",op="get"} 0`,
		`ginja_cloud_bytes_total{backend="mem",direction="up"} 5`,
		`ginja_cloud_op_seconds_count{backend="mem",op="put"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = getBody(t, srv, "/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	var statusz struct {
		Status  map[string]int   `json:"status"`
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &statusz); err != nil {
		t.Fatalf("statusz not JSON: %v\n%s", err, body)
	}
	if statusz.Status["updates"] != 42 {
		t.Fatalf("status payload = %+v", statusz.Status)
	}
	if len(statusz.Metrics) == 0 {
		t.Fatal("statusz carries no metric snapshots")
	}

	if code, _ := getBody(t, srv, "/nope"); code != 404 {
		t.Fatalf("/nope = %d, want 404", code)
	}
}

// TestPprofAndRuntimeMetrics covers the operator surface a fleet needs:
// the pprof routes on the private mux and the process-level gauges.
func TestPprofAndRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	code, body := getBody(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d\n%.200s", code, body)
	}
	if code, _ := getBody(t, srv, "/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Fatalf("/debug/pprof/goroutine = %d", code)
	}
	if code, _ := getBody(t, srv, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := getBody(t, srv, "/debug/pprof/symbol"); code != 200 {
		t.Fatalf("/debug/pprof/symbol = %d", code)
	}

	code, body = getBody(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, name := range []string{"ginja_goroutines", "ginja_heap_bytes"} {
		if !strings.Contains(body, name+" ") {
			t.Errorf("/metrics missing %s", name)
		}
	}

	// The gauges are sampled live: both must be positive.
	var goroutines, heap float64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "ginja_goroutines":
			goroutines = m.Value
		case "ginja_heap_bytes":
			heap = m.Value
		}
	}
	if goroutines < 1 {
		t.Fatalf("ginja_goroutines = %v, want ≥ 1", goroutines)
	}
	if heap <= 0 {
		t.Fatalf("ginja_heap_bytes = %v, want > 0", heap)
	}
}
