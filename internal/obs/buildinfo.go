package obs

import "runtime"

// RegisterBuildInfo registers the conventional ginja_build_info constant
// gauge: value 1, identity carried in labels (the Prometheus idiom for
// joining version metadata onto any other series). version names the
// middleware build, formatVersion the cloud object-format generation the
// build writes; the Go runtime version is filled in here. The same labels
// surface on /statusz via the registry snapshot.
func RegisterBuildInfo(reg *Registry, version, formatVersion string) {
	reg.Gauge("ginja_build_info",
		"Constant 1; middleware version, Go runtime and cloud object-format version as labels.",
		Labels{
			"version":        version,
			"go_version":     runtime.Version(),
			"format_version": formatVersion,
		}).Set(1)
}
