// Package obs is Ginja's always-on observability subsystem: a
// concurrency-safe registry of named counters, gauges and bounded-memory
// streaming histograms, a Prometheus-text-format / JSON export surface
// (see http.go), and an instrumented cloud.ObjectStore wrapper (store.go).
//
// Unlike internal/metrics — the experiment harness's exact-quantile
// sample recorder — every instrument here is fixed-size: counters and
// gauges are single atomics, histograms use fixed log-scaled buckets, so
// a production instance can run instrumented indefinitely. The hot-path
// cost of an update is one or two atomic operations; registration (the
// only locking path) happens once per instrument.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimension values to an instrument (e.g. op="put").
// Label names must match [a-zA-Z_][a-zA-Z0-9_]*; values are arbitrary and
// escaped on export.
type Labels map[string]string

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing value (float64 so it can carry
// seconds as well as counts, per Prometheus convention).
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v (v < 0 is ignored).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc increases the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// AddDuration adds d in seconds.
func (c *Counter) AddDuration(d time.Duration) { c.Add(d.Seconds()) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down, or a function sampled at
// export time (see Registry.GaugeFunc).
type Gauge struct {
	bits atomic.Uint64

	mu sync.Mutex
	fn func() float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the sampled function value (for GaugeFunc gauges) or the
// last Set/Add result.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) setFunc(fn func() float64) {
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// series is one (name, labels) instrument instance.
type series struct {
	labels Labels // canonical copy
	key    string // rendered label set, export-ready
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups the series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry holds instruments, health checks and the trace-span ring. The
// zero value is not usable; call NewRegistry. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	healthMu sync.Mutex
	health   map[string]func() error
	horder   []string

	spansMu sync.Mutex
	spans   *SpanRing
}

// NewRegistry returns an empty registry (span ring at default capacity).
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		health:   make(map[string]func() error),
		spans:    NewSpanRing(DefaultSpanRecent, DefaultSpanSlowest),
	}
}

// Spans returns the registry's trace-span ring. Instrumented subsystems
// record completed spans here whenever a registry is attached — capture is
// independent of any logger's level — and /tracez serves its snapshot.
func (r *Registry) Spans() *SpanRing {
	r.spansMu.Lock()
	defer r.spansMu.Unlock()
	return r.spans
}

// ConfigureSpans replaces the span ring with one retaining recentCap
// recent and slowCap slowest spans. Call before wiring the registry into a
// Ginja instance: subsystems capture the ring at construction, so spans
// recorded into a replaced ring are not visible to handlers any more.
func (r *Registry) ConfigureSpans(recentCap, slowCap int) *SpanRing {
	ring := NewSpanRing(recentCap, slowCap)
	r.spansMu.Lock()
	r.spans = ring
	r.spansMu.Unlock()
	return ring
}

// Counter returns the counter for (name, labels), registering it on first
// use. Re-registering with the same name and labels returns the same
// handle. Invalid names or a kind clash panic: instrument registration is
// programmer-controlled, not data-driven.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.register(name, help, kindCounter, labels, nil)
	return s.ctr
}

// Gauge returns the gauge for (name, labels), registering it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.register(name, help, kindGauge, labels, nil)
	return s.gauge
}

// GaugeFunc registers a gauge whose value is sampled by fn at export time
// (queue depths, channel occupancy). Re-registering replaces the function,
// so a restarted subsystem can rebind its gauges to fresh state.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) *Gauge {
	s := r.register(name, help, kindGauge, labels, nil)
	s.gauge.setFunc(fn)
	return s.gauge
}

// Histogram returns the streaming histogram for (name, labels),
// registering it on first use. bounds are the ascending bucket upper
// bounds; nil uses LatencyBuckets(). Every series of a family shares the
// family's bounds (the bounds of the first registration win).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	s := r.register(name, help, kindHistogram, labels, bounds)
	return s.hist
}

func (r *Registry) register(name, help string, k kind, labels Labels, bounds []float64) *series {
	if err := validateMetricName(name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	key, canonical, err := renderLabels(labels)
	if err != nil {
		panic(fmt.Sprintf("obs: metric %s: %v", name, err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		if k == kindHistogram {
			if len(bounds) == 0 {
				bounds = LatencyBuckets()
			}
			if !sort.Float64sAreSorted(bounds) {
				panic(fmt.Sprintf("obs: metric %s: histogram bounds not ascending", name))
			}
		}
		f = &family{name: name, help: help, kind: k, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, k, f.kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: canonical, key: key}
		switch k {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = newHistogram(f.bounds)
		}
		f.series[key] = s
	}
	return s
}

// validateMetricName enforces the Prometheus metric-name grammar.
func validateMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		if c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return fmt.Errorf("invalid metric name %q", name)
	}
	return nil
}

func validateLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	if strings.HasPrefix(name, "__") {
		return fmt.Errorf("label name %q is reserved", name)
	}
	for i, c := range name {
		if c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9') {
			continue
		}
		return fmt.Errorf("invalid label name %q", name)
	}
	return nil
}

// renderLabels validates label names and produces the canonical,
// export-ready `{a="x",b="y"}` form (empty string for no labels) together
// with a defensive copy of the map.
func renderLabels(labels Labels) (string, Labels, error) {
	if len(labels) == 0 {
		return "", nil, nil
	}
	names := make([]string, 0, len(labels))
	for n := range labels {
		if err := validateLabelName(n); err != nil {
			return "", nil, err
		}
		names = append(names, n)
	}
	sort.Strings(names)
	canonical := make(Labels, len(labels))
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		canonical[n] = labels[n]
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[n]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String(), canonical, nil
}

// escapeLabelValue escapes per the Prometheus text exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// RegisterHealth installs (or replaces) a named health check evaluated by
// CheckHealth and the /healthz endpoint. A nil error means healthy.
func (r *Registry) RegisterHealth(name string, check func() error) {
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	if _, ok := r.health[name]; !ok {
		r.horder = append(r.horder, name)
	}
	r.health[name] = check
}

// HealthStatus is the outcome of one registered health check.
type HealthStatus struct {
	Name  string `json:"name"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// CheckHealth evaluates every registered check in registration order and
// reports whether all passed.
func (r *Registry) CheckHealth() (bool, []HealthStatus) {
	r.healthMu.Lock()
	names := append([]string(nil), r.horder...)
	checks := make([]func() error, len(names))
	for i, n := range names {
		checks[i] = r.health[n]
	}
	r.healthMu.Unlock()

	ok := true
	out := make([]HealthStatus, len(names))
	for i, n := range names {
		st := HealthStatus{Name: n, OK: true}
		if err := checks[i](); err != nil {
			st.OK = false
			st.Error = err.Error()
			ok = false
		}
		out[i] = st
	}
	return ok, out
}

// MetricSnapshot is one instrument's state, as rendered by Snapshot and
// the /statusz endpoint.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`
	// Value carries counters and gauges.
	Value float64 `json:"value,omitempty"`
	// Count/Sum/Quantiles carry histograms.
	Count     int64              `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Snapshot returns every instrument's current state, sorted by name then
// label set.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []MetricSnapshot
	for _, f := range sortedFamilies(r.families) {
		for _, s := range sortedSeries(f.series) {
			snap := MetricSnapshot{Name: f.name, Labels: s.labels, Kind: f.kind.String()}
			switch f.kind {
			case kindCounter:
				snap.Value = s.ctr.Value()
			case kindGauge:
				snap.Value = s.gauge.Value()
			case kindHistogram:
				snap.Count = s.hist.Count()
				snap.Sum = s.hist.Sum()
				snap.Quantiles = map[string]float64{
					"p50": s.hist.Quantile(0.50),
					"p90": s.hist.Quantile(0.90),
					"p99": s.hist.Quantile(0.99),
				}
			}
			out = append(out, snap)
		}
	}
	return out
}

func sortedFamilies(m map[string]*family) []*family {
	out := make([]*family, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func sortedSeries(m map[string]*series) []*series {
	out := make([]*series, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}
