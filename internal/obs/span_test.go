package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
)

// TestSpanRingSlowestSurvivesChurn records far more spans than either
// retention bucket holds and checks the slowest-N set keeps exactly the
// global worst spans while the recent ring keeps only the tail.
func TestSpanRingSlowestSurvivesChurn(t *testing.T) {
	const recentCap, slowCap, n = 16, 4, 10_000
	ring := NewSpanRing(recentCap, slowCap)
	base := time.Unix(0, 0)
	for i := 1; i <= n; i++ {
		d := time.Duration(i) * time.Microsecond
		if i%997 == 0 {
			// Rare outliers, planted early and often overwritten in the
			// recent ring — only slowest-N retention can keep them.
			d = time.Duration(i) * time.Second
		}
		ring.Record(Span{Name: "op", ID: int64(i), Start: base, Duration: d})
	}
	recent, slowest, total := ring.Snapshot()
	if total != n {
		t.Fatalf("total = %d, want %d", total, n)
	}
	if len(recent) != recentCap {
		t.Fatalf("recent len = %d, want %d", len(recent), recentCap)
	}
	if recent[0].ID != n || recent[recentCap-1].ID != n-recentCap+1 {
		t.Fatalf("recent not newest-first: ids %d..%d", recent[0].ID, recent[recentCap-1].ID)
	}
	if len(slowest) != slowCap {
		t.Fatalf("slowest len = %d, want %d", len(slowest), slowCap)
	}
	// The four slowest are the four largest outliers: 997*k seconds.
	wantIDs := []int64{10 * 997, 9 * 997, 8 * 997, 7 * 997}
	for i, want := range wantIDs {
		if slowest[i].ID != want {
			t.Fatalf("slowest[%d].ID = %d, want %d (got %+v)", i, slowest[i].ID, want, slowest)
		}
	}
	for i := 1; i < len(slowest); i++ {
		if slowest[i].Duration > slowest[i-1].Duration {
			t.Fatalf("slowest not sorted descending at %d", i)
		}
	}
}

// TestSpanRingPartialFill covers a ring snapshot before either retention
// bucket has wrapped.
func TestSpanRingPartialFill(t *testing.T) {
	ring := NewSpanRing(8, 4)
	ring.Record(Span{Name: "a", ID: 1, Duration: time.Millisecond})
	ring.Record(Span{Name: "b", ID: 2, Duration: 2 * time.Millisecond})
	recent, slowest, total := ring.Snapshot()
	if total != 2 || len(recent) != 2 || len(slowest) != 2 {
		t.Fatalf("total=%d recent=%d slowest=%d, want 2/2/2", total, len(recent), len(slowest))
	}
	if recent[0].ID != 2 || slowest[0].ID != 2 {
		t.Fatalf("ordering wrong: recent[0]=%+v slowest[0]=%+v", recent[0], slowest[0])
	}
}

// TestTracezEndpoint exercises /tracez end to end: spans recorded into the
// registry ring surface as JSON with recent + slowest sections.
func TestTracezEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.ConfigureSpans(8, 2)
	ring := reg.Spans()
	for i := 1; i <= 20; i++ {
		ring.Record(Span{
			Name:     "wal_put",
			ID:       int64(i),
			Extra:    512,
			Start:    time.Unix(int64(i), 0),
			Duration: time.Duration(i) * time.Millisecond,
		})
	}
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	code, body := getBody(t, srv, "/tracez")
	if code != 200 {
		t.Fatalf("/tracez = %d\n%s", code, body)
	}
	var tz struct {
		Total   uint64 `json:"total"`
		Recent  []struct {
			Name       string  `json:"name"`
			ID         int64   `json:"id"`
			Extra      int64   `json:"extra"`
			DurationMs float64 `json:"duration_ms"`
		} `json:"recent"`
		Slowest []struct {
			ID         int64   `json:"id"`
			DurationMs float64 `json:"duration_ms"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal([]byte(body), &tz); err != nil {
		t.Fatalf("tracez body not JSON: %v\n%s", err, body)
	}
	if tz.Total != 20 {
		t.Fatalf("total = %d, want 20", tz.Total)
	}
	if len(tz.Recent) != 8 || tz.Recent[0].ID != 20 {
		t.Fatalf("recent = %+v, want 8 spans newest-first", tz.Recent)
	}
	if tz.Recent[0].Name != "wal_put" || tz.Recent[0].Extra != 512 {
		t.Fatalf("span fields lost: %+v", tz.Recent[0])
	}
	if len(tz.Slowest) != 2 || tz.Slowest[0].ID != 20 || tz.Slowest[1].ID != 19 {
		t.Fatalf("slowest = %+v, want ids 20,19", tz.Slowest)
	}
	if tz.Slowest[0].DurationMs != 20 {
		t.Fatalf("duration_ms = %v, want 20", tz.Slowest[0].DurationMs)
	}
}

// TestHealthHysteresis checks that a short run of failures — a transient
// fault absorbed by a retry — does not flip /healthz, while a run at the
// threshold does, and one success arms the hysteresis again.
func TestHealthHysteresis(t *testing.T) {
	reg := NewRegistry()
	sim := cloudsim.New(cloud.NewMemStore(), cloudsim.Options{TimeScale: -1})
	store := InstrumentStore(sim, reg, "cloud")
	ctx := context.Background()

	// threshold-1 consecutive failures: still healthy.
	sim.StartOutage()
	for i := 0; i < DefaultHealthThreshold-1; i++ {
		if err := store.Put(ctx, "w", []byte("x")); err == nil {
			t.Fatal("Put during outage should fail")
		}
		if err := store.Healthy(); err != nil {
			t.Fatalf("healthy after %d failures, hysteresis broken: %v", i+1, err)
		}
	}
	// The retry succeeds: failure run resets.
	sim.EndOutage()
	if err := store.Put(ctx, "w", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := store.Healthy(); err != nil {
		t.Fatalf("healthy store reports %v", err)
	}

	// A sustained outage does trip it.
	sim.StartOutage()
	for i := 0; i < DefaultHealthThreshold; i++ {
		_ = store.Put(ctx, "w", []byte("x"))
	}
	if err := store.Healthy(); err == nil {
		t.Fatal("store healthy after sustained outage")
	} else if !strings.Contains(err.Error(), "consecutive failures") {
		t.Fatalf("unhelpful health error: %v", err)
	}

	// A lower threshold trips sooner.
	store.SetHealthThreshold(1)
	sim.EndOutage()
	_ = store.Put(ctx, "w", []byte("x"))
	sim.StartOutage()
	_ = store.Put(ctx, "w", []byte("x"))
	if err := store.Healthy(); err == nil {
		t.Fatal("threshold 1 should trip on first failure")
	}
}

// TestBuildInfoGauge checks the conventional build-info constant gauge.
func TestBuildInfoGauge(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "test-1.0", "2")
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()
	code, body := getBody(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, `ginja_build_info{`) ||
		!strings.Contains(body, `version="test-1.0"`) ||
		!strings.Contains(body, `format_version="2"`) ||
		!strings.Contains(body, `go_version="go`) {
		t.Fatalf("/metrics missing build info labels:\n%s", body)
	}
}
