package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentWriters hammers one registry from many goroutines
// that both register (same names — must converge on shared handles) and
// update instruments, while a reader exports continuously. Run with -race.
func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 500
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // concurrent scraper
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
				_ = r.Snapshot()
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(id int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				r.Counter("test_ops_total", "ops", Labels{"g": "shared"}).Inc()
				r.Gauge("test_depth", "depth", nil).Set(float64(i))
				r.Histogram("test_latency_seconds", "lat", nil, nil).Observe(0.001 * float64(i%50))
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	<-scraperDone

	if got := r.Counter("test_ops_total", "ops", Labels{"g": "shared"}).Value(); got != goroutines*perG {
		t.Fatalf("counter = %v, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("test_latency_seconds", "lat", nil, nil).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %v, want %d", got, goroutines*perG)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help", Labels{"a": "1", "b": "2"})
	c2 := r.Counter("x_total", "other help ignored", Labels{"b": "2", "a": "1"})
	if c1 != c2 {
		t.Fatal("same name+labels must return the same handle regardless of map order")
	}
	c3 := r.Counter("x_total", "", Labels{"a": "1", "b": "3"})
	if c1 == c3 {
		t.Fatal("different label values must be distinct series")
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("clash", "", nil)
}

func TestRegistryInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0leading", "has space", "dash-ed", "utf8_héllo"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q accepted", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
	for _, bad := range []string{"", "0x", "__reserved", "la bel"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("label name %q accepted", bad)
				}
			}()
			r.Counter("ok_total", "", Labels{bad: "v"})
		}()
	}
}

func TestGaugeFuncRebinds(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeFunc("depth", "", nil, func() float64 { return 1 })
	if g.Value() != 1 {
		t.Fatalf("Value = %v", g.Value())
	}
	// A restarted subsystem re-registers with fresh state.
	r.GaugeFunc("depth", "", nil, func() float64 { return 42 })
	if g.Value() != 42 {
		t.Fatalf("Value after rebind = %v, want 42", g.Value())
	}
}

func TestCounterAddDuration(t *testing.T) {
	var c Counter
	c.AddDuration(1500 * time.Millisecond)
	c.Add(-5) // negative ignored: counters are monotone
	if got := c.Value(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("Value = %v, want 1.5", got)
	}
}

func TestHealthChecks(t *testing.T) {
	r := NewRegistry()
	ok, checks := r.CheckHealth()
	if !ok || len(checks) != 0 {
		t.Fatal("empty registry must be healthy")
	}
	fail := false
	r.RegisterHealth("a", func() error { return nil })
	r.RegisterHealth("b", func() error {
		if fail {
			return errFail
		}
		return nil
	})
	ok, checks = r.CheckHealth()
	if !ok || len(checks) != 2 || !checks[0].OK || !checks[1].OK {
		t.Fatalf("healthy: ok=%v checks=%+v", ok, checks)
	}
	fail = true
	ok, checks = r.CheckHealth()
	if ok || checks[1].OK || checks[1].Error == "" {
		t.Fatalf("unhealthy: ok=%v checks=%+v", ok, checks)
	}
}

var errFail = &healthErr{}

type healthErr struct{}

func (*healthErr) Error() string { return "boom" }
