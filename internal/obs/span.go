package obs

import (
	"sort"
	"sync"
	"time"
)

// Span is one completed trace span: a named operation with a correlation
// id, a start time and a duration. Spans are fixed-size values (no maps,
// no per-span allocation), so recording one from the commit hot path costs
// a mutex acquisition and a struct copy — nothing the allocator sees.
type Span struct {
	// Name identifies the operation ("aggregate", "wal_put", "batch",
	// "recovery:fetch", ...). Call sites pass string constants, so the
	// field never forces an allocation.
	Name string `json:"name"`
	// ID correlates related spans: WAL-object spans carry the object
	// timestamp, batch spans the Aggregator batch id, recovery-phase spans
	// the dump timestamp they restore from. Spans of one batch/object/
	// recovery share an ID, so a trace can be reassembled from the ring.
	ID int64 `json:"id"`
	// Extra is a secondary quantity whose meaning depends on Name: updates
	// in a batch, sealed bytes uploaded, objects fetched.
	Extra int64 `json:"extra,omitempty"`
	// Start is when the operation began (wall or virtual clock — whatever
	// clock the recording subsystem runs on).
	Start time.Time `json:"start"`
	// Duration is how long it took.
	Duration time.Duration `json:"duration"`
}

// Default span-ring capacities (see Registry.Spans / ConfigureSpans).
const (
	DefaultSpanRecent  = 256
	DefaultSpanSlowest = 32
)

// SpanRing is a bounded buffer of completed spans with two retention
// policies side by side: a ring of the most recent spans (what is the
// system doing right now?) and a keep-the-slowest-N set (what were the
// worst operations since start?). Both are fixed-size, so an instance can
// record spans indefinitely; Record never allocates. It backs the /tracez
// endpoint and is independent of log levels — spans flow here whenever a
// registry is attached, while slog emission stays Debug-gated.
type SpanRing struct {
	mu     sync.Mutex
	recent []Span // ring storage, len == capacity
	total  uint64 // spans ever recorded; recent[total%len] is the next slot
	slow   []Span // slowest-N, unordered; len grows to cap then stays
}

// NewSpanRing returns a span ring retaining the recentCap most recent
// spans and the slowCap slowest spans (minimums of 1 each).
func NewSpanRing(recentCap, slowCap int) *SpanRing {
	if recentCap < 1 {
		recentCap = 1
	}
	if slowCap < 1 {
		slowCap = 1
	}
	return &SpanRing{
		recent: make([]Span, recentCap),
		slow:   make([]Span, 0, slowCap),
	}
}

// Record stores one completed span. Safe for concurrent use; does not
// allocate.
func (r *SpanRing) Record(s Span) {
	r.mu.Lock()
	r.recent[r.total%uint64(len(r.recent))] = s
	r.total++
	if len(r.slow) < cap(r.slow) {
		r.slow = append(r.slow, s)
	} else {
		// Replace the fastest retained span if this one is slower. cap is
		// small (tens), so the scan is cheaper than heap bookkeeping.
		min := 0
		for i := 1; i < len(r.slow); i++ {
			if r.slow[i].Duration < r.slow[min].Duration {
				min = i
			}
		}
		if s.Duration > r.slow[min].Duration {
			r.slow[min] = s
		}
	}
	r.mu.Unlock()
}

// Total returns how many spans have ever been recorded.
func (r *SpanRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained spans: recent newest-first, slowest by
// descending duration, plus the total ever recorded. The slices are
// copies; the ring keeps recording concurrently.
func (r *SpanRing) Snapshot() (recent, slowest []Span, total uint64) {
	r.mu.Lock()
	n := uint64(len(r.recent))
	have := r.total
	if have > n {
		have = n
	}
	recent = make([]Span, 0, have)
	for i := uint64(1); i <= have; i++ {
		recent = append(recent, r.recent[(r.total-i)%n])
	}
	slowest = append([]Span(nil), r.slow...)
	total = r.total
	r.mu.Unlock()
	sort.SliceStable(slowest, func(i, j int) bool { return slowest[i].Duration > slowest[j].Duration })
	return recent, slowest, total
}
