package obs

import (
	"regexp"
	"strings"
	"testing"
)

func promText(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// sampleLine matches one exposition sample: name{labels} value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestPrometheusFormatValidity checks every emitted line is either a
// comment or a grammatically valid sample, across all three kinds.
func TestPrometheusFormatValidity(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", "operations", Labels{"op": "put", "backend": "s3"}).Add(3)
	r.Gauge("queue_depth", "queue depth", nil).Set(7)
	h := r.Histogram("lat_seconds", "latency", Labels{"stage": "upload"}, []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(5)
	h.Observe(100)

	out := promText(t, r)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE ops_total counter",
		`ops_total{backend="s3",op="put"} 3`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{stage="upload",le="0.1"} 1`,
		`lat_seconds_bucket{stage="upload",le="1"} 1`,
		`lat_seconds_bucket{stage="upload",le="10"} 2`,
		`lat_seconds_bucket{stage="upload",le="+Inf"} 3`,
		`lat_seconds_count{stage="upload"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

// TestPrometheusEscaping puts every character class the format must
// escape into label values and HELP text.
func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "help with \\ backslash\nand newline",
		Labels{"path": "a\"b\\c\nd"}).Inc()
	out := promText(t, r)
	if !strings.Contains(out, `# HELP esc_total help with \\ backslash\nand newline`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	// No raw newline may survive inside any single line.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("escaped output produced invalid line: %q", line)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	// 1000 observations at ~10 ms: the p50 estimate must land inside the
	// bucket containing 0.01 (bounds ...0.0064, 0.0128...).
	for i := 0; i < 1000; i++ {
		h.Observe(0.010)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.0064 || p50 > 0.0128 {
		t.Fatalf("p50 = %v, want within (0.0064, 0.0128]", p50)
	}
	if got := h.Mean(); got < 0.0099 || got > 0.0101 {
		t.Fatalf("Mean = %v, want ~0.010 (sum is exact)", got)
	}
	// Overflow: beyond the last bound reports the highest finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2", got)
	}
}
