package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a bounded-memory streaming histogram: observations are
// counted into fixed log-scaled buckets, so memory is O(buckets) no
// matter how many samples arrive and Observe is lock-free (one atomic add
// per bucket plus count/sum upkeep). Quantiles are estimated from the
// bucket a rank falls into, log-interpolated between its bounds — the
// standard Prometheus-style trade: bounded error (one bucket width) for
// unbounded uptime.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// NewHistogram returns a standalone histogram (outside any registry) with
// the given ascending bucket upper bounds; nil uses LatencyBuckets().
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets()
	}
	return newHistogram(bounds)
}

// LatencyBuckets returns the default duration buckets in seconds:
// exponential ×2 from 100 µs to ~105 s (21 buckets). They cover local
// SSD syncs through WAN uploads and multi-second retries.
func LatencyBuckets() []float64 {
	out := make([]float64, 21)
	v := 1e-4
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// SizeBuckets returns the default byte-size buckets: exponential ×4 from
// 256 B to 1 GiB (12 buckets) — WAL pages through split dump parts.
func SizeBuckets() []float64 {
	out := make([]float64, 12)
	v := 256.0
	for i := range out {
		out[i] = v
		v *= 4
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = overflow
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the running mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the rank and log-interpolating inside it. Returns 0 when empty.
// Ranks in the overflow bucket report the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		if i >= len(h.bounds) { // overflow bucket: best effort
			return h.bounds[len(h.bounds)-1]
		}
		hi := h.bounds[i]
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		// Position of the rank inside this bucket, interpolated on the
		// log scale when both edges are positive (the buckets are
		// log-spaced, so that is the natural density assumption).
		frac := float64(rank-(cum-c)) / float64(c)
		if lo > 0 {
			return lo * math.Pow(hi/lo, frac)
		}
		return hi * frac
	}
	return h.bounds[len(h.bounds)-1]
}

// bucketCounts returns the per-bucket counts (used by the exporter).
func (h *Histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}
