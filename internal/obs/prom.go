package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, one
// HELP/TYPE header each, histograms expanded into cumulative _bucket
// series with le labels plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range sortedFamilies(r.families) {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range sortedSeries(f.series) {
			var err error
			switch f.kind {
			case kindCounter:
				err = writeSample(w, f.name, s.key, s.ctr.Value())
			case kindGauge:
				err = writeSample(w, f.name, s.key, s.gauge.Value())
			case kindHistogram:
				err = writeHistogram(w, f, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, name, labelKey string, v float64) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labelKey, formatValue(v))
	return err
}

// writeHistogram expands one histogram series: cumulative buckets with the
// le label merged into the series' own labels, then _sum and _count.
func writeHistogram(w io.Writer, f *family, s *series) error {
	counts := s.hist.bucketCounts()
	var cum int64
	for i, bound := range f.bounds {
		cum += counts[i]
		if err := writeBucket(w, f.name, s.key, formatValue(bound), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if err := writeBucket(w, f.name, s.key, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.key, formatValue(s.hist.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.key, s.hist.Count())
	return err
}

func writeBucket(w io.Writer, name, labelKey, le string, cum int64) error {
	var k string
	if labelKey == "" {
		k = `{le="` + le + `"}`
	} else {
		k = strings.TrimSuffix(labelKey, "}") + `,le="` + le + `"}`
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, k, cum)
	return err
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
