package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//   - /metrics — Prometheus text exposition format
//   - /healthz — 200 when every registered health check passes, 503
//     otherwise, with a JSON body listing each check
//   - /statusz — JSON: the optional status value (e.g. core.Stats) plus a
//     full registry snapshot
//   - /tracez — JSON: the span ring's recent spans (newest first) and its
//     slowest-retained spans, for tracing batches, uploads and recoveries
//     without raising any log level
//
// status may be nil; it is sampled per request. The handler is a plain
// mux, so it can be mounted standalone (cmd/ginja -metrics-addr) or under
// a larger server.
func Handler(r *Registry, status func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		ok, checks := r.CheckHealth()
		w.Header().Set("Content-Type", "application/json")
		code := http.StatusOK
		state := "ok"
		if !ok {
			code = http.StatusServiceUnavailable
			state = "unhealthy"
		}
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(struct {
			Status string         `json:"status"`
			Time   time.Time      `json:"time"`
			Checks []HealthStatus `json:"checks"`
		}{state, time.Now().UTC(), checks})
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		recent, slowest, total := r.Spans().Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Time    time.Time    `json:"time"`
			Total   uint64       `json:"total"`
			Recent  []tracezSpan `json:"recent"`
			Slowest []tracezSpan `json:"slowest"`
		}{time.Now().UTC(), total, tracezSpans(recent), tracezSpans(slowest)})
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		var st any
		if status != nil {
			st = status()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Time    time.Time        `json:"time"`
			Status  any              `json:"status,omitempty"`
			Metrics []MetricSnapshot `json:"metrics"`
		}{time.Now().UTC(), st, r.Snapshot()})
	})
	return mux
}

// tracezSpan is the /tracez wire rendering of a Span: durations in
// milliseconds, start as RFC3339, so the endpoint reads well in a terminal
// and diffs cleanly in tests.
type tracezSpan struct {
	Name       string    `json:"name"`
	ID         int64     `json:"id"`
	Extra      int64     `json:"extra,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
}

func tracezSpans(spans []Span) []tracezSpan {
	out := make([]tracezSpan, len(spans))
	for i, s := range spans {
		out[i] = tracezSpan{
			Name:       s.Name,
			ID:         s.ID,
			Extra:      s.Extra,
			Start:      s.Start.UTC(),
			DurationMs: float64(s.Duration) / float64(time.Millisecond),
		}
	}
	return out
}
