package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//   - /metrics — Prometheus text exposition format
//   - /healthz — 200 when every registered health check passes, 503
//     otherwise, with a JSON body listing each check
//   - /statusz — JSON: the optional status value (e.g. core.Stats) plus a
//     full registry snapshot
//   - /tracez — JSON: the span ring's recent spans (newest first) and its
//     slowest-retained spans, for tracing batches, uploads and recoveries
//     without raising any log level
//   - /debug/pprof/ — the standard runtime profiles (heap, goroutine,
//     profile, trace, …), so a fleet operator can answer "which tenant
//     owns these goroutines/bytes" against a live process
//
// status may be nil; it is sampled per request. The handler is a plain
// mux, so it can be mounted standalone (cmd/ginja -metrics-addr) or under
// a larger server.
func Handler(r *Registry, status func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		ok, checks := r.CheckHealth()
		w.Header().Set("Content-Type", "application/json")
		code := http.StatusOK
		state := "ok"
		if !ok {
			code = http.StatusServiceUnavailable
			state = "unhealthy"
		}
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(struct {
			Status string         `json:"status"`
			Time   time.Time      `json:"time"`
			Checks []HealthStatus `json:"checks"`
		}{state, time.Now().UTC(), checks})
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		recent, slowest, total := r.Spans().Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Time    time.Time    `json:"time"`
			Total   uint64       `json:"total"`
			Recent  []tracezSpan `json:"recent"`
			Slowest []tracezSpan `json:"slowest"`
		}{time.Now().UTC(), total, tracezSpans(recent), tracezSpans(slowest)})
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		var st any
		if status != nil {
			st = status()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Time    time.Time        `json:"time"`
			Status  any              `json:"status,omitempty"`
			Metrics []MetricSnapshot `json:"metrics"`
		}{time.Now().UTC(), st, r.Snapshot()})
	})
	// The default-mux pprof registrations don't apply to a private mux,
	// so mount the handlers explicitly. Index serves every named profile
	// (heap, goroutine, block, mutex, …); the other three need their own
	// routes because they are not lookup-style profiles.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RegisterRuntimeMetrics adds process-level gauges to the registry:
// ginja_goroutines (live goroutine count) and ginja_heap_bytes (heap in
// use), sampled at export time. One call per registry; fleet deployments
// use these to verify per-tenant overhead stays flat as tenants scale.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("ginja_goroutines",
		"Goroutines currently live in the process.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("ginja_heap_bytes",
		"Heap bytes in use (runtime.MemStats.HeapInuse), sampled at export.", nil,
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
}

// tracezSpan is the /tracez wire rendering of a Span: durations in
// milliseconds, start as RFC3339, so the endpoint reads well in a terminal
// and diffs cleanly in tests.
type tracezSpan struct {
	Name       string    `json:"name"`
	ID         int64     `json:"id"`
	Extra      int64     `json:"extra,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
}

func tracezSpans(spans []Span) []tracezSpan {
	out := make([]tracezSpan, len(spans))
	for i, s := range spans {
		out[i] = tracezSpan{
			Name:       s.Name,
			ID:         s.ID,
			Extra:      s.Extra,
			Start:      s.Start.UTC(),
			DurationMs: float64(s.Duration) / float64(time.Millisecond),
		}
	}
	return out
}
