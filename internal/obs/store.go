package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ginja-dr/ginja/internal/cloud"
)

// InstrumentedStore wraps any cloud.ObjectStore and records per-operation
// telemetry into a Registry:
//
//	ginja_cloud_op_seconds{backend,op}     latency histogram
//	ginja_cloud_ops_total{backend,op}      operation counter
//	ginja_cloud_op_errors_total{backend,op} error counter (ErrNotFound excluded)
//	ginja_cloud_bytes_total{backend,direction} payload bytes up/down
//
// It also tracks reachability — consecutive failures and the last error —
// and registers a health check named "store:<backend>", so wrapping each
// replica of a ReplicatedStore with a distinct backend label yields
// per-replica health on /healthz.
type InstrumentedStore struct {
	inner   cloud.ObjectStore
	backend string

	ops       map[string]*opInstruments
	bytesUp   *Counter
	bytesDown *Counter

	consecutiveErrs atomic.Int64
	failThreshold   atomic.Int64
	lastMu          sync.Mutex
	lastErr         error
	lastSuccess     time.Time
}

// DefaultHealthThreshold is how many consecutive failed operations an
// InstrumentedStore tolerates before its health check reports unhealthy.
// One failed PUT followed by a successful retry is the pipeline's normal
// operating mode under transient faults; flipping /healthz on every such
// blip makes the signal useless to an orchestrator, so health trips only
// after a run of failures long enough to indicate a real outage.
const DefaultHealthThreshold = 3

type opInstruments struct {
	latency *Histogram
	total   *Counter
	errs    *Counter
}

var _ cloud.ObjectStore = (*InstrumentedStore)(nil)

// InstrumentStore wraps inner, registering its instruments and a
// "store:<backend>" health check in reg. backend is a label value naming
// the wrapped store (e.g. "s3", "replica-0").
func InstrumentStore(inner cloud.ObjectStore, reg *Registry, backend string) *InstrumentedStore {
	s := &InstrumentedStore{
		inner:   inner,
		backend: backend,
		ops:     make(map[string]*opInstruments, 4),
	}
	for _, op := range []string{"put", "get", "list", "delete"} {
		l := Labels{"backend": backend, "op": op}
		s.ops[op] = &opInstruments{
			latency: reg.Histogram("ginja_cloud_op_seconds",
				"Cloud object-store operation latency in seconds.", l, nil),
			total: reg.Counter("ginja_cloud_ops_total",
				"Cloud object-store operations issued.", l),
			errs: reg.Counter("ginja_cloud_op_errors_total",
				"Cloud object-store operations that failed (not-found excluded).", l),
		}
	}
	s.failThreshold.Store(DefaultHealthThreshold)
	s.bytesUp = reg.Counter("ginja_cloud_bytes_total",
		"Payload bytes transferred to/from the cloud.",
		Labels{"backend": backend, "direction": "up"})
	s.bytesDown = reg.Counter("ginja_cloud_bytes_total",
		"Payload bytes transferred to/from the cloud.",
		Labels{"backend": backend, "direction": "down"})
	reg.RegisterHealth("store:"+backend, s.Healthy)
	return s
}

// SetHealthThreshold overrides how many consecutive failures it takes
// before Healthy reports unhealthy (flap hysteresis; default
// DefaultHealthThreshold). n < 1 is clamped to 1.
func (s *InstrumentedStore) SetHealthThreshold(n int) {
	if n < 1 {
		n = 1
	}
	s.failThreshold.Store(int64(n))
}

// Healthy reports store reachability: nil while the most recent operations
// succeeded or only a short run of them failed (below the flap-hysteresis
// threshold), the last error once failures have accumulated past it. A
// store that has seen no traffic yet is considered healthy; any single
// success resets the failure run.
func (s *InstrumentedStore) Healthy() error {
	if s.consecutiveErrs.Load() < s.failThreshold.Load() {
		return nil
	}
	s.lastMu.Lock()
	defer s.lastMu.Unlock()
	return fmt.Errorf("obs: store %s unreachable (%d consecutive failures): %w",
		s.backend, s.consecutiveErrs.Load(), s.lastErr)
}

// LastSuccess returns the time of the most recent successful operation
// (zero if none yet).
func (s *InstrumentedStore) LastSuccess() time.Time {
	s.lastMu.Lock()
	defer s.lastMu.Unlock()
	return s.lastSuccess
}

// record finishes one operation's accounting. Not-found is a normal
// answer, not a failure; context cancellation is the caller shutting
// down, so it counts as neither success nor failure for reachability.
func (s *InstrumentedStore) record(op string, start time.Time, err error) {
	m := s.ops[op]
	m.total.Inc()
	m.latency.ObserveDuration(time.Since(start))
	switch {
	case err == nil || errors.Is(err, cloud.ErrNotFound):
		s.consecutiveErrs.Store(0)
		s.lastMu.Lock()
		s.lastSuccess = time.Now()
		s.lastMu.Unlock()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.errs.Inc()
	default:
		m.errs.Inc()
		s.consecutiveErrs.Add(1)
		s.lastMu.Lock()
		s.lastErr = err
		s.lastMu.Unlock()
	}
}

// Put implements cloud.ObjectStore.
func (s *InstrumentedStore) Put(ctx context.Context, name string, data []byte) error {
	start := time.Now()
	err := s.inner.Put(ctx, name, data)
	s.record("put", start, err)
	if err == nil {
		s.bytesUp.Add(float64(len(data)))
	}
	return err
}

// Get implements cloud.ObjectStore.
func (s *InstrumentedStore) Get(ctx context.Context, name string) ([]byte, error) {
	start := time.Now()
	data, err := s.inner.Get(ctx, name)
	s.record("get", start, err)
	if err == nil {
		s.bytesDown.Add(float64(len(data)))
	}
	return data, err
}

// List implements cloud.ObjectStore.
func (s *InstrumentedStore) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	start := time.Now()
	infos, err := s.inner.List(ctx, prefix)
	s.record("list", start, err)
	return infos, err
}

// Delete implements cloud.ObjectStore.
func (s *InstrumentedStore) Delete(ctx context.Context, name string) error {
	start := time.Now()
	err := s.inner.Delete(ctx, name)
	s.record("delete", start, err)
	return err
}

// Inner returns the wrapped store (tests, repair tooling).
func (s *InstrumentedStore) Inner() cloud.ObjectStore { return s.inner }
