package wal

import (
	"errors"
	"io"
	"io/fs"
	"os"

	"github.com/ginja-dr/ginja/internal/vfs"
)

// ReadFrom scans the log starting at LSN start and returns every valid
// record up to the durable tail. The tail is detected by the first torn /
// corrupt / LSN-mismatching record, so a log rebuilt by Ginja's Recovery
// (which only restores WAL objects with consecutive timestamps) replays
// exactly the prefix that is safe.
func ReadFrom(fsys vfs.FS, layout Layout, start int64) ([]Record, int64, error) {
	if err := layout.Validate(); err != nil {
		return nil, 0, err
	}
	buf, err := readContiguous(fsys, layout, start)
	if err != nil {
		return nil, 0, err
	}
	recs, consumed := DecodeAllAt(buf, start)
	return recs, start + int64(consumed), nil
}

// readContiguous collects the raw log bytes beginning at LSN start,
// following the layout across segment files until a file is missing or
// short. For circular layouts it reads at most one full capacity to avoid
// looping forever.
func readContiguous(fsys vfs.FS, layout Layout, start int64) ([]byte, error) {
	var out []byte
	lsn := start
	var budget int64 = -1
	if layout.Circular {
		budget = layout.Capacity()
	}
	for {
		if budget == 0 {
			return out, nil
		}
		p, off := layout.Locate(lsn)
		f, err := fsys.OpenFile(p, os.O_RDONLY, 0)
		if errors.Is(err, fs.ErrNotExist) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return nil, err
		}
		// Read from off to the end of the segment's data region (or the
		// end of the file, whichever is smaller).
		segEnd := layout.SegmentSize
		if size < segEnd {
			segEnd = size
		}
		if off >= segEnd {
			f.Close()
			return out, nil
		}
		n := segEnd - off
		if budget > 0 && n > budget {
			n = budget
		}
		chunk := make([]byte, n)
		read, err := f.ReadAt(chunk, off)
		f.Close()
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, err
		}
		out = append(out, chunk[:read]...)
		lsn += int64(read)
		if budget > 0 {
			budget -= int64(read)
		}
		if int64(read) < n {
			return out, nil // short file: durable tail reached
		}
		// Continue into the next segment only if we consumed this one to
		// its full data region.
		if off+int64(read) < layout.SegmentSize {
			return out, nil
		}
	}
}
