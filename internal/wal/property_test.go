package wal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ginja-dr/ginja/internal/vfs"
)

// TestPropertyWriterReaderRoundTrip: any sequence of appended records with
// interleaved flushes reads back exactly, for both layout families.
func TestPropertyWriterReaderRoundTrip(t *testing.T) {
	layouts := map[string]func() Layout{
		"linear":   func() Layout { return linearLayout(512, 4096) },
		"circular": func() Layout { return circularLayout(512, 2048+512*64, 2048, 2) },
	}
	for name, mkLayout := range layouts {
		t.Run(name, func(t *testing.T) {
			prop := func(seed int64, n uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				fsys := vfs.NewMemFS()
				layout := mkLayout()
				w, err := NewWriter(fsys, layout, 0)
				if err != nil {
					return false
				}
				count := int(n%60) + 1
				var wantTx []uint64
				for i := 0; i < count; i++ {
					keyLen := rng.Intn(40)
					valLen := rng.Intn(100)
					rec := Record{
						Type:  RecordType(rng.Intn(4)) + RecordUpdate,
						TxID:  rng.Uint64(),
						Table: "t",
						Key:   make([]byte, keyLen),
						Value: make([]byte, valLen),
					}
					rng.Read(rec.Key)
					rng.Read(rec.Value)
					if _, err := w.Append(rec); err != nil {
						return false
					}
					wantTx = append(wantTx, rec.TxID)
					if rng.Intn(3) == 0 {
						if err := w.Flush(); err != nil {
							return false
						}
					}
				}
				if err := w.Close(); err != nil { // Close flushes
					return false
				}
				recs, _, err := ReadFrom(fsys, layout, 0)
				if err != nil {
					return false
				}
				if len(recs) != len(wantTx) {
					return false
				}
				for i, r := range recs {
					if r.TxID != wantTx[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecordSpansPageBoundary: a record larger than a page must span
// pages and read back intact.
func TestRecordSpansPageBoundary(t *testing.T) {
	fsys := vfs.NewMemFS()
	layout := linearLayout(512, 8192)
	w, err := NewWriter(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	big := Record{Type: RecordUpdate, TxID: 7, Table: "t", Key: []byte("k"), Value: make([]byte, 1500)}
	for i := range big.Value {
		big.Value[i] = byte(i)
	}
	if _, err := w.Append(big); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadFrom(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Value) != 1500 {
		t.Fatalf("recs = %d, value %d bytes", len(recs), len(recs[0].Value))
	}
	for i, b := range recs[0].Value {
		if b != byte(i) {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

// TestRecordSpansSegmentBoundary: records crossing segment files.
func TestRecordSpansSegmentBoundary(t *testing.T) {
	fsys := vfs.NewMemFS()
	layout := linearLayout(512, 1024) // two pages per segment
	w, err := NewWriter(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec := Record{Type: RecordUpdate, TxID: uint64(i), Table: "t",
			Key: []byte("key"), Value: make([]byte, 300)}
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadFrom(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("read %d records across segments, want 10", len(recs))
	}
}

// TestReaderToleratesMissingTail: a log whose later segments were never
// replicated reads cleanly up to the gap.
func TestReaderToleratesMissingTail(t *testing.T) {
	fsys := vfs.NewMemFS()
	layout := linearLayout(512, 1024)
	w, err := NewWriter(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ { // ≈2400 bytes: spans 3 segments
		rec := Record{Type: RecordCommit, TxID: uint64(i)}
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Destroy the last segment (as if its WAL object was in flight when
	// the disaster hit).
	files, err := vfs.Walk(fsys, "pg_xlog")
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(files[len(files)-1]); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadFrom(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) >= 80 {
		t.Fatalf("read %d records, want a clean strict prefix", len(recs))
	}
	for i, r := range recs {
		if r.TxID != uint64(i) {
			t.Fatalf("record %d has TxID %d — not a prefix", i, r.TxID)
		}
	}
}
