package wal

import "fmt"

// Layout describes how the logical LSN space (a contiguous byte stream)
// maps onto segment files, reproducing the write pattern of a concrete
// DBMS so that Ginja's processors see realistic file names and offsets.
type Layout struct {
	// PageSize is the I/O granularity: flushes always write whole pages.
	// PostgreSQL uses 8 KiB WAL pages, InnoDB 512-byte log blocks (§4).
	PageSize int
	// SegmentSize is the total size of one segment file, including any
	// reserved header.
	SegmentSize int64
	// HeaderSize is the reserved region at the start of each segment file
	// that log data never touches (InnoDB's 2048-byte log-file header,
	// whose blocks at offsets 512/1536 hold checkpoint info).
	HeaderSize int64
	// Circular selects round-robin reuse of NumFiles segment files
	// (InnoDB) instead of an unbounded series of new files (PostgreSQL).
	Circular bool
	// NumFiles is the number of files in a circular layout.
	NumFiles int
	// SegmentPath names the file for segment index idx. For circular
	// layouts idx is already reduced modulo NumFiles.
	SegmentPath func(idx int64) string
}

// Validate checks internal consistency.
func (l Layout) Validate() error {
	if l.PageSize <= 0 {
		return fmt.Errorf("wal: PageSize must be positive, got %d", l.PageSize)
	}
	if l.SegmentSize <= l.HeaderSize {
		return fmt.Errorf("wal: SegmentSize %d must exceed HeaderSize %d", l.SegmentSize, l.HeaderSize)
	}
	if l.usableSegment()%int64(l.PageSize) != 0 {
		return fmt.Errorf("wal: usable segment size %d must be a multiple of PageSize %d",
			l.usableSegment(), l.PageSize)
	}
	if l.Circular && l.NumFiles < 2 {
		return fmt.Errorf("wal: circular layout needs at least 2 files, got %d", l.NumFiles)
	}
	if l.SegmentPath == nil {
		return fmt.Errorf("wal: SegmentPath is required")
	}
	return nil
}

// usableSegment is the number of log-data bytes per segment file.
func (l Layout) usableSegment() int64 { return l.SegmentSize - l.HeaderSize }

// Capacity returns the total LSN capacity of a circular layout before
// wrap-around, or -1 for unbounded linear layouts.
func (l Layout) Capacity() int64 {
	if !l.Circular {
		return -1
	}
	return l.usableSegment() * int64(l.NumFiles)
}

// Locate maps a logical LSN to its segment file and in-file offset.
func (l Layout) Locate(lsn int64) (path string, offset int64) {
	seg := lsn / l.usableSegment()
	within := lsn % l.usableSegment()
	if l.Circular {
		seg %= int64(l.NumFiles)
	}
	return l.SegmentPath(seg), l.HeaderSize + within
}

// SegmentIndex returns the (unreduced) segment index containing lsn.
func (l Layout) SegmentIndex(lsn int64) int64 { return lsn / l.usableSegment() }

// PageStart returns the LSN of the start of the page containing lsn.
func (l Layout) PageStart(lsn int64) int64 {
	return lsn - lsn%int64(l.PageSize)
}
