package wal

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/ginja-dr/ginja/internal/vfs"
)

func linearLayout(pageSize int, segSize int64) Layout {
	return Layout{
		PageSize:    pageSize,
		SegmentSize: segSize,
		SegmentPath: func(idx int64) string { return fmt.Sprintf("pg_xlog/%016X", idx) },
	}
}

func circularLayout(pageSize int, segSize, header int64, files int) Layout {
	return Layout{
		PageSize:    pageSize,
		SegmentSize: segSize,
		HeaderSize:  header,
		Circular:    true,
		NumFiles:    files,
		SegmentPath: func(idx int64) string { return fmt.Sprintf("ib_logfile%d", idx) },
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Record{
		{Type: RecordUpdate, TxID: 7, LSN: 100, Table: "stock", Key: []byte("k1"), Value: []byte("v1")},
		{Type: RecordDelete, TxID: 8, LSN: 0, Table: "t", Key: []byte("gone")},
		{Type: RecordCommit, TxID: 9, LSN: 55},
		{Type: RecordCheckpoint, TxID: 0, LSN: 1 << 40},
		{Type: RecordUpdate, TxID: 1, Table: "", Key: nil, Value: make([]byte, 10000)},
	}
	for i, rec := range tests {
		encoded, err := rec.Encode(nil)
		if err != nil {
			t.Fatalf("case %d: Encode: %v", i, err)
		}
		if len(encoded) != rec.EncodedSize() {
			t.Fatalf("case %d: encoded %d bytes, EncodedSize says %d", i, len(encoded), rec.EncodedSize())
		}
		got, n, err := Decode(encoded)
		if err != nil {
			t.Fatalf("case %d: Decode: %v", i, err)
		}
		if n != len(encoded) {
			t.Fatalf("case %d: consumed %d, want %d", i, n, len(encoded))
		}
		if got.Type != rec.Type || got.TxID != rec.TxID || got.LSN != rec.LSN || got.Table != rec.Table {
			t.Fatalf("case %d: got %+v, want %+v", i, got, rec)
		}
		if string(got.Key) != string(rec.Key) || string(got.Value) != string(rec.Value) {
			t.Fatalf("case %d: payload mismatch", i)
		}
	}
}

func TestRecordDecodeRejectsCorruption(t *testing.T) {
	rec := Record{Type: RecordUpdate, TxID: 1, Table: "t", Key: []byte("k"), Value: []byte("v")}
	encoded, err := rec.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad magic", func(b []byte) []byte { c := clone(b); c[0] = 0; return c }},
		{"bad type", func(b []byte) []byte { c := clone(b); c[1] = 99; return c }},
		{"flipped payload byte", func(b []byte) []byte { c := clone(b); c[headerSize] ^= 0xFF; return c }},
		{"flipped crc", func(b []byte) []byte { c := clone(b); c[len(c)-1] ^= 0xFF; return c }},
		{"all zero", func(b []byte) []byte { return make([]byte, len(b)) }},
	} {
		if _, _, err := Decode(mutate.fn(encoded)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode = %v, want ErrCorrupt", mutate.name, err)
		}
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestRecordPropertyRoundTrip(t *testing.T) {
	prop := func(typ uint8, txid uint64, table string, key, value []byte) bool {
		rec := Record{
			Type:  RecordType(typ%4) + RecordUpdate,
			TxID:  txid,
			Table: limit(table, maxTableLen),
			Key:   key,
			Value: value,
		}
		encoded, err := rec.Encode(nil)
		if err != nil {
			return false
		}
		got, n, err := Decode(encoded)
		if err != nil || n != len(encoded) {
			return false
		}
		return got.Type == rec.Type && got.TxID == rec.TxID &&
			got.Table == rec.Table && string(got.Key) == string(rec.Key) &&
			string(got.Value) == string(rec.Value)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func limit(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func TestDecodeAllStopsAtTorn(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		rec := Record{Type: RecordCommit, TxID: uint64(i), LSN: int64(len(buf))}
		var err error
		buf, err = rec.Encode(buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	full := len(buf)
	buf = append(buf, make([]byte, 100)...) // zero tail, like a padded page
	recs, consumed := DecodeAll(buf)
	if len(recs) != 5 {
		t.Fatalf("decoded %d records, want 5", len(recs))
	}
	if consumed != full {
		t.Fatalf("consumed %d, want %d", consumed, full)
	}
}

func TestDecodeAllAtRejectsStaleLSN(t *testing.T) {
	recA := Record{Type: RecordCommit, TxID: 1, LSN: 0}
	bufA, err := recA.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Record claims LSN 0 but we scan from LSN 4096 (a previous circular
	// cycle left it behind): must be rejected.
	recs, consumed := DecodeAllAt(bufA, 4096)
	if len(recs) != 0 || consumed != 0 {
		t.Fatalf("stale record accepted: %d recs, %d consumed", len(recs), consumed)
	}
}

func TestLayoutValidate(t *testing.T) {
	good := linearLayout(512, 8192)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	bad := []Layout{
		{PageSize: 0, SegmentSize: 8192, SegmentPath: good.SegmentPath},
		{PageSize: 512, SegmentSize: 0, SegmentPath: good.SegmentPath},
		{PageSize: 500, SegmentSize: 8192, SegmentPath: good.SegmentPath}, // not a divisor
		{PageSize: 512, SegmentSize: 8192},                                // no path fn
		{PageSize: 512, SegmentSize: 8192, Circular: true, NumFiles: 1, SegmentPath: good.SegmentPath},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad layout %d accepted", i)
		}
	}
}

func TestLayoutLocateLinear(t *testing.T) {
	l := linearLayout(512, 4096)
	tests := []struct {
		lsn      int64
		wantPath string
		wantOff  int64
	}{
		{0, "pg_xlog/0000000000000000", 0},
		{4095, "pg_xlog/0000000000000000", 4095},
		{4096, "pg_xlog/0000000000000001", 0},
		{10000, "pg_xlog/0000000000000002", 10000 - 2*4096},
	}
	for _, tt := range tests {
		p, off := l.Locate(tt.lsn)
		if p != tt.wantPath || off != tt.wantOff {
			t.Errorf("Locate(%d) = (%s, %d), want (%s, %d)", tt.lsn, p, off, tt.wantPath, tt.wantOff)
		}
	}
}

func TestLayoutLocateCircular(t *testing.T) {
	l := circularLayout(512, 4096+2048, 2048, 2)
	usable := int64(4096)
	tests := []struct {
		lsn      int64
		wantPath string
		wantOff  int64
	}{
		{0, "ib_logfile0", 2048},
		{usable - 1, "ib_logfile0", 2048 + usable - 1},
		{usable, "ib_logfile1", 2048},
		{2 * usable, "ib_logfile0", 2048}, // wrapped
		{3 * usable, "ib_logfile1", 2048},
	}
	for _, tt := range tests {
		p, off := l.Locate(tt.lsn)
		if p != tt.wantPath || off != tt.wantOff {
			t.Errorf("Locate(%d) = (%s, %d), want (%s, %d)", tt.lsn, p, off, tt.wantPath, tt.wantOff)
		}
	}
	if got := l.Capacity(); got != 2*usable {
		t.Fatalf("Capacity = %d, want %d", got, 2*usable)
	}
}

func writeRecords(t *testing.T, w *Writer, n int) []int64 {
	t.Helper()
	lsns := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		lsn, err := w.Append(Record{
			Type:  RecordUpdate,
			TxID:  uint64(i),
			Table: "t",
			Key:   []byte(fmt.Sprintf("key-%04d", i)),
			Value: []byte(fmt.Sprintf("value-%04d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	return lsns
}

func TestWriterFlushAndReadBack(t *testing.T) {
	layouts := map[string]Layout{
		"linear-pg":     linearLayout(8192, 8192*4),
		"circular-inno": circularLayout(512, 512*64+2048, 2048, 2),
	}
	for name, layout := range layouts {
		t.Run(name, func(t *testing.T) {
			fsys := vfs.NewMemFS()
			w, err := NewWriter(fsys, layout, 0)
			if err != nil {
				t.Fatal(err)
			}
			writeRecords(t, w, 50)
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if w.Pending() != 0 {
				t.Fatalf("Pending = %d after flush", w.Pending())
			}
			recs, end, err := ReadFrom(fsys, layout, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 50 {
				t.Fatalf("read %d records, want 50", len(recs))
			}
			if end != w.FlushedLSN() {
				t.Fatalf("end = %d, want %d", end, w.FlushedLSN())
			}
			for i, r := range recs {
				if r.TxID != uint64(i) {
					t.Fatalf("record %d has TxID %d", i, r.TxID)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWriterUnflushedRecordsNotDurable(t *testing.T) {
	fsys := vfs.NewMemFS()
	layout := linearLayout(512, 4096)
	w, err := NewWriter(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 3)
	recs, _, err := ReadFrom(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("read %d records before flush, want 0", len(recs))
	}
}

func TestWriterSpansSegments(t *testing.T) {
	fsys := vfs.NewMemFS()
	layout := linearLayout(512, 1024) // tiny segments force spanning
	w, err := NewWriter(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 100)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	files, err := vfs.Walk(fsys, "pg_xlog")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected multiple segments, got %v", files)
	}
	recs, _, err := ReadFrom(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("read %d records, want 100", len(recs))
	}
}

func TestWriterReopenAtFlushedLSN(t *testing.T) {
	fsys := vfs.NewMemFS()
	layout := linearLayout(512, 4096)
	w, err := NewWriter(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	writeRecords(t, w, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	resume := w.FlushedLSN()

	w2, err := NewWriter(fsys, layout, resume)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Append(Record{Type: RecordCommit, TxID: 999}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadFrom(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 {
		t.Fatalf("read %d records after reopen, want 11", len(recs))
	}
	if last := recs[len(recs)-1]; last.TxID != 999 {
		t.Fatalf("last record TxID = %d, want 999", last.TxID)
	}
}

func TestReadFromMidLog(t *testing.T) {
	fsys := vfs.NewMemFS()
	layout := linearLayout(512, 4096)
	w, err := NewWriter(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsns := writeRecords(t, w, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadFrom(fsys, layout, lsns[10])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("read %d records from mid-log, want 10", len(recs))
	}
	if recs[0].TxID != 10 {
		t.Fatalf("first record TxID = %d, want 10", recs[0].TxID)
	}
}

func TestCircularWrapRejectsStaleCycle(t *testing.T) {
	fsys := vfs.NewMemFS()
	layout := circularLayout(512, 512*8+2048, 2048, 2) // capacity 8 KiB
	w, err := NewWriter(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fill more than one full capacity so the log wraps and overwrites.
	var lastLSN int64
	for i := 0; i < 100; i++ {
		lsn, err := w.Append(Record{Type: RecordUpdate, TxID: uint64(i), Table: "t",
			Key: []byte("k"), Value: make([]byte, 100)})
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = lsn
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Reading from the most recent record must see it (and only records
	// of the current cycle — stale data must terminate the scan, not
	// produce wrong records).
	recs, _, err := ReadFrom(fsys, layout, lastLSN)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].TxID != 99 {
		t.Fatalf("recs = %d, first = %+v", len(recs), recs)
	}
	for _, r := range recs {
		if r.LSN < lastLSN {
			t.Fatalf("stale record surfaced: %+v", r)
		}
	}
}

func TestWriterPageRewritePattern(t *testing.T) {
	// Multiple small flushed commits must rewrite the same page: the
	// file content at page 0 should contain all records even though each
	// flush wrote the full page.
	fsys := vfs.NewMemFS()
	layout := linearLayout(8192, 8192*2)
	w, err := NewWriter(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append(Record{Type: RecordCommit, TxID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := fsys.Stat("pg_xlog/0000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 8192 {
		t.Fatalf("segment size = %d, want exactly one page (8192)", fi.Size())
	}
	recs, _, err := ReadFrom(fsys, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("read %d records, want 5", len(recs))
	}
}
