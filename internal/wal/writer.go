package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path"
	"sync"

	"github.com/ginja-dr/ginja/internal/vfs"
)

// Writer appends records to the logical log and flushes them to segment
// files with page granularity: a flush rewrites every page touched since
// the previous flush, including the (partially filled) current page — the
// exact rewrite pattern Ginja's aggregation coalesces (paper §5.3,
// "the DBMS write to the log on the granularity of a page, and many times
// these pages are overwritten with more updates").
type Writer struct {
	fs     vfs.FS
	layout Layout

	mu         sync.Mutex
	appendLSN  int64  // next byte to be appended
	flushedLSN int64  // everything below this is durable
	bufStart   int64  // page-aligned LSN where buf begins
	buf        []byte // bytes in [bufStart, appendLSN)
	files      map[string]vfs.File
}

// NewWriter creates a Writer appending at startLSN (0 for a fresh log; the
// recovered end-of-log when reopening after a crash). Existing page bytes
// preceding startLSN within its page are reloaded so partial-page rewrites
// stay byte-identical.
func NewWriter(fsys vfs.FS, layout Layout, startLSN int64) (*Writer, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	w := &Writer{
		fs:         fsys,
		layout:     layout,
		appendLSN:  startLSN,
		flushedLSN: startLSN,
		bufStart:   layout.PageStart(startLSN),
		files:      make(map[string]vfs.File),
	}
	if head := startLSN - w.bufStart; head > 0 {
		// Reload the leading fragment of the current page from disk. A
		// short read (EOF) is tolerated: after a disaster recovery the
		// log tail may be shorter than the checkpoint location recorded
		// in the control file — the missing bytes were never replicated
		// and stay zero, which is exactly the lost-tail semantics.
		p, off := layout.Locate(w.bufStart)
		frag := make([]byte, head)
		f, err := w.file(p)
		if err != nil {
			return nil, err
		}
		if _, err := f.ReadAt(frag, off); err != nil && !errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("wal: reload page head: %w", err)
		}
		w.buf = frag
	}
	return w, nil
}

// Layout returns the writer's layout.
func (w *Writer) Layout() Layout { return w.layout }

// AppendLSN returns the LSN the next record will receive.
func (w *Writer) AppendLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLSN
}

// FlushedLSN returns the durable frontier.
func (w *Writer) FlushedLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushedLSN
}

// Append encodes rec (stamping its LSN) into the in-memory tail and
// returns the record's LSN. The record is not durable until Flush.
func (w *Writer) Append(rec Record) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec.LSN = w.appendLSN
	encoded, err := rec.Encode(w.buf)
	if err != nil {
		return 0, err
	}
	w.buf = encoded
	lsn := w.appendLSN
	w.appendLSN = w.bufStart + int64(len(w.buf))
	return lsn, nil
}

// Flush writes every dirty page to its segment file and fsyncs the
// affected files, making all appended records durable. Each page is a
// separate WriteAt — the page-granular writes Ginja observes.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.appendLSN == w.flushedLSN {
		return nil
	}
	pageSize := int64(w.layout.PageSize)
	synced := make(map[string]vfs.File)
	for pageLSN := w.bufStart; pageLSN < w.appendLSN; pageLSN += pageSize {
		page := make([]byte, pageSize)
		copy(page, w.buf[pageLSN-w.bufStart:])
		p, off := w.layout.Locate(pageLSN)
		f, err := w.file(p)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(page, off); err != nil {
			return fmt.Errorf("wal: flush page at lsn %d: %w", pageLSN, err)
		}
		synced[p] = f
	}
	for p, f := range synced {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: sync %s: %w", p, err)
		}
	}
	w.flushedLSN = w.appendLSN
	// Retain only the trailing partial page in the buffer.
	newStart := w.layout.PageStart(w.appendLSN)
	w.buf = append([]byte(nil), w.buf[newStart-w.bufStart:]...)
	w.bufStart = newStart
	return nil
}

// Pending returns the number of bytes appended but not yet flushed.
func (w *Writer) Pending() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLSN - w.flushedLSN
}

// Close flushes and releases all open segment files.
func (w *Writer) Close() error {
	if err := w.Flush(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var firstErr error
	for p, f := range w.files {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: close %s: %w", p, err)
		}
		delete(w.files, p)
	}
	return firstErr
}

func (w *Writer) file(p string) (vfs.File, error) {
	if f, ok := w.files[p]; ok {
		return f, nil
	}
	if dir := path.Dir(p); dir != "." && dir != "/" {
		if err := w.fs.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("wal: mkdir for %s: %w", p, err)
		}
	}
	f, err := w.fs.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %s: %w", p, err)
	}
	w.files[p] = f
	return f, nil
}
