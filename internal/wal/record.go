// Package wal implements the write-ahead-log substrate shared by the
// database engines: CRC-framed records, page-granular flushing (the I/O
// unit Ginja intercepts — paper §4: "the I/O on these files is performed
// on the granularity of a page"), and both linear (PostgreSQL-style) and
// circular (InnoDB-style) segment layouts.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// RecordType distinguishes the log record kinds the engines emit.
type RecordType uint8

// Record types. Update and Delete carry table/key/value payloads; Commit
// seals a transaction; Checkpoint marks that everything before it has been
// flushed to the table files (paper §4).
const (
	RecordUpdate RecordType = iota + 1
	RecordDelete
	RecordCommit
	RecordCheckpoint
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case RecordUpdate:
		return "update"
	case RecordDelete:
		return "delete"
	case RecordCommit:
		return "commit"
	case RecordCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is one logical WAL entry. LSN is the byte offset of the record in
// the logical log stream; it is stamped by the Writer and verified during
// reads, which makes stale data from a previous cycle of a circular log
// (same file offset, older LSN) detectable.
type Record struct {
	Type  RecordType
	TxID  uint64
	LSN   int64
	Table string
	Key   []byte
	Value []byte
}

// Framing constants.
const (
	recordMagic   = 0xD7
	headerSize    = 1 + 1 + 8 + 8 + 2 + 2 + 4 // magic, type, txid, lsn, tableLen, keyLen, valueLen
	trailerSize   = 4                         // crc32c
	maxTableLen   = 1 << 15
	maxKeyLen     = 1 << 15
	maxValueLen   = 1 << 30
	recordMinSize = headerSize + trailerSize
)

// ErrCorrupt reports an invalid or torn record during decoding. Hitting it
// at the tail of the log is the normal end-of-recovery condition.
var ErrCorrupt = errors.New("wal: corrupt or torn record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodedSize returns the on-disk size of r.
func (r *Record) EncodedSize() int {
	return headerSize + len(r.Table) + len(r.Key) + len(r.Value) + trailerSize
}

// Encode appends the framed record to dst and returns the extended slice.
func (r *Record) Encode(dst []byte) ([]byte, error) {
	if len(r.Table) > maxTableLen {
		return nil, fmt.Errorf("wal: table name too long (%d bytes)", len(r.Table))
	}
	if len(r.Key) > maxKeyLen {
		return nil, fmt.Errorf("wal: key too long (%d bytes)", len(r.Key))
	}
	if len(r.Value) > maxValueLen {
		return nil, fmt.Errorf("wal: value too long (%d bytes)", len(r.Value))
	}
	start := len(dst)
	dst = append(dst, recordMagic, byte(r.Type))
	dst = binary.LittleEndian.AppendUint64(dst, r.TxID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.LSN))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Table)))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Value)))
	dst = append(dst, r.Table...)
	dst = append(dst, r.Key...)
	dst = append(dst, r.Value...)
	crc := crc32.Checksum(dst[start:], crcTable)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return dst, nil
}

// Decode parses one record from the front of buf, returning the record and
// the number of bytes consumed. A zero, short, or checksum-failing prefix
// returns ErrCorrupt.
func Decode(buf []byte) (Record, int, error) {
	if len(buf) < recordMinSize {
		return Record{}, 0, ErrCorrupt
	}
	if buf[0] != recordMagic {
		return Record{}, 0, ErrCorrupt
	}
	typ := RecordType(buf[1])
	if typ < RecordUpdate || typ > RecordCheckpoint {
		return Record{}, 0, ErrCorrupt
	}
	txid := binary.LittleEndian.Uint64(buf[2:10])
	lsn := int64(binary.LittleEndian.Uint64(buf[10:18]))
	tableLen := int(binary.LittleEndian.Uint16(buf[18:20]))
	keyLen := int(binary.LittleEndian.Uint16(buf[20:22]))
	valueLen := int(binary.LittleEndian.Uint32(buf[22:26]))
	if valueLen > maxValueLen {
		return Record{}, 0, ErrCorrupt
	}
	total := headerSize + tableLen + keyLen + valueLen + trailerSize
	if len(buf) < total {
		return Record{}, 0, ErrCorrupt
	}
	body := buf[:total-trailerSize]
	wantCRC := binary.LittleEndian.Uint32(buf[total-trailerSize : total])
	if crc32.Checksum(body, crcTable) != wantCRC {
		return Record{}, 0, ErrCorrupt
	}
	p := headerSize
	rec := Record{Type: typ, TxID: txid, LSN: lsn}
	rec.Table = string(buf[p : p+tableLen])
	p += tableLen
	rec.Key = append([]byte(nil), buf[p:p+keyLen]...)
	p += keyLen
	rec.Value = append([]byte(nil), buf[p:p+valueLen]...)
	return rec, total, nil
}

// DecodeAll parses consecutive records from buf, stopping cleanly at the
// first corrupt/torn entry (the durable tail). It returns the records and
// the byte length of the valid prefix.
func DecodeAll(buf []byte) ([]Record, int) {
	var recs []Record
	consumed := 0
	for {
		rec, n, err := Decode(buf[consumed:])
		if err != nil {
			return recs, consumed
		}
		recs = append(recs, rec)
		consumed += n
	}
}

// DecodeAllAt parses consecutive records that start at logical LSN start,
// additionally requiring every record's stamped LSN to match its position.
// A mismatch (stale bytes from a previous circular-log cycle) terminates
// the scan exactly like a torn record.
func DecodeAllAt(buf []byte, start int64) ([]Record, int) {
	var recs []Record
	consumed := 0
	for {
		rec, n, err := Decode(buf[consumed:])
		if err != nil || rec.LSN != start+int64(consumed) {
			return recs, consumed
		}
		recs = append(recs, rec)
		consumed += n
	}
}
