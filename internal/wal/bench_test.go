package wal

import (
	"fmt"
	"testing"

	"github.com/ginja-dr/ginja/internal/vfs"
)

func benchRecord(i int) Record {
	return Record{
		Type:  RecordUpdate,
		TxID:  uint64(i),
		Table: "stock",
		Key:   []byte(fmt.Sprintf("s:%04d:%06d", i%100, i)),
		Value: make([]byte, 120),
	}
}

func BenchmarkRecordEncode(b *testing.B) {
	rec := benchRecord(1)
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = rec.Encode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordDecode(b *testing.B) {
	rec := benchRecord(1)
	encoded, err := rec.Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(encoded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriterAppendFlush(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		layout Layout
	}{
		{"pg-8K", linearLayout(8192, 16<<20)},
		{"inno-512B", circularLayout(512, 2048+4<<20, 2048, 2)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			w, err := NewWriter(vfs.NewMemFS(), cfg.layout, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(benchRecord(i)); err != nil {
					b.Fatal(err)
				}
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReadFrom(b *testing.B) {
	fsys := vfs.NewMemFS()
	layout := linearLayout(8192, 16<<20)
	w, err := NewWriter(fsys, layout, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, err := w.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, _, err := ReadFrom(fsys, layout, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != 5000 {
			b.Fatalf("read %d records", len(recs))
		}
	}
}
