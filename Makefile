GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages (pipeline + metrics registry).
race:
	$(GO) test -race ./internal/obs/... ./internal/core/...

# verify is the tier-1 gate (see ROADMAP.md): everything must pass before
# a change lands.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .
