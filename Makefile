GO ?= go

# Per-target budget for fuzz-smoke (Go -fuzztime syntax).
FUZZTIME ?= 10s

.PHONY: build test vet race verify fuzz-smoke bench bench-json bench-json-smoke bench-commit bench-commit-smoke bench-data bench-data-smoke bench-recovery bench-recovery-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: pipeline + metrics registry,
# the simulated cloud (virtual-clock latency/outage state), and the
# deterministic simulation driver.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/cloud/... ./internal/sim/...

# fuzz-smoke gives each wire-format fuzz target a short budget on top of
# the checked-in corpus (internal/core/testdata/fuzz/). Reproduce a
# finding with: go test ./internal/core -run 'FuzzX/<entry>'
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzParseWALObjectName$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzParseDBObjectName$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzDecodeWrites$$' -fuzztime $(FUZZTIME)

# verify is the tier-1 gate (see ROADMAP.md): everything must pass before
# a change lands.
verify: build vet test race fuzz-smoke bench-data-smoke bench-commit-smoke bench-recovery-smoke

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# bench-json measures the cloud data path (dump upload, recovery prefetch,
# sealer allocs) on the deterministic simulated WAN and records the result
# in BENCH_datapath.json. Virtual-clock latencies: exact and
# machine-independent.
bench-json:
	$(GO) run ./cmd/ginja-benchjson -out BENCH_datapath.json

bench-json-smoke:
	$(GO) run ./cmd/ginja-benchjson -smoke

# bench-data is the streamed-datapath gate: ginja-benchjson exits non-zero
# if the dump's peak resident bytes exceed 2 × CheckpointUploaders ×
# MaxObjectSize, if the dump did not actually split into parts, if bytes
# stayed queued after close, or if legacy whole-sealed objects stopped
# recovering. The smoke variant runs the small scenario and is part of
# `make verify`.
bench-data:
	$(GO) run ./cmd/ginja-benchjson -out BENCH_datapath.json

bench-data-smoke:
	$(GO) run ./cmd/ginja-benchjson -smoke

# bench-commit measures the commit path before/after WAL batch packing —
# throughput, batch-latency quantiles, PUTs-per-batch, allocs-per-commit
# and the costmodel $/day projection — and records BENCH_commitpath.json.
# Deterministic: latencies are virtual time on the simulated 40 ms WAN.
bench-commit:
	$(GO) run ./cmd/ginja-benchjson -path commit -out BENCH_commitpath.json

bench-commit-smoke:
	$(GO) run ./cmd/ginja-benchjson -path commit -smoke

# bench-recovery measures RPO and RTO directly: deterministic sim fault
# schedules (crash mid-batch, outage then crash, crash during a multi-part
# dump) replayed across seeds under the virtual clock, reporting data-loss
# window and recovery-time percentiles plus the per-phase RTO budget into
# BENCH_recovery.json. ginja-benchjson exits non-zero if any scenario
# fails its consistent-prefix check, recovers nothing, or if no run
# measures a non-zero data-loss window (the RPO watermark regressed).
bench-recovery:
	$(GO) run ./cmd/ginja-benchjson -path recovery -out BENCH_recovery.json

bench-recovery-smoke:
	$(GO) run ./cmd/ginja-benchjson -path recovery -smoke
