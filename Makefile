GO ?= go

# Per-target budget for fuzz-smoke (Go -fuzztime syntax).
FUZZTIME ?= 10s

# Statement-coverage floors for cover-check (percent). The replication
# core and the observability layer are where silent regressions hide.
COVER_FLOOR_CORE ?= 85
COVER_FLOOR_OBS  ?= 85

.PHONY: build test vet race verify cover-check fuzz-smoke bench bench-json bench-json-smoke bench-commit bench-commit-smoke bench-data bench-data-smoke bench-delta bench-delta-smoke bench-recovery bench-recovery-smoke bench-fleet bench-fleet-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: pipeline + metrics registry,
# the simulated cloud (virtual-clock latency/outage state), and the
# deterministic simulation driver.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/cloud/... ./internal/sim/...

# fuzz-smoke gives each wire-format fuzz target a short budget on top of
# the checked-in corpus (internal/core/testdata/fuzz/). Reproduce a
# finding with: go test ./internal/core -run 'FuzzX/<entry>'
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzParseWALObjectName$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzParseDBObjectName$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzDecodeWrites$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzListDiff$$' -fuzztime $(FUZZTIME)

# cover-check enforces per-package statement-coverage floors on the two
# packages where a silent test regression hurts most, and leaves a
# machine-readable summary in coverage_summary.txt (uploaded by CI).
cover-check:
	$(GO) test -count=1 -coverprofile=coverage_core.out ./internal/core
	$(GO) test -count=1 -coverprofile=coverage_obs.out ./internal/obs
	@rm -f coverage_summary.txt
	@$(GO) tool cover -func=coverage_core.out | awk -v floor=$(COVER_FLOOR_CORE) \
		'/^total:/ { pct = $$3 + 0; printf "internal/core  %.1f%%  (floor %d%%)\n", pct, floor >> "coverage_summary.txt"; \
		if (pct < floor) { printf "FAIL: internal/core coverage %.1f%% below floor %d%%\n", pct, floor; exit 1 } }'
	@$(GO) tool cover -func=coverage_obs.out | awk -v floor=$(COVER_FLOOR_OBS) \
		'/^total:/ { pct = $$3 + 0; printf "internal/obs   %.1f%%  (floor %d%%)\n", pct, floor >> "coverage_summary.txt"; \
		if (pct < floor) { printf "FAIL: internal/obs coverage %.1f%% below floor %d%%\n", pct, floor; exit 1 } }'
	@cat coverage_summary.txt

# verify is the tier-1 gate (see ROADMAP.md): everything must pass before
# a change lands.
verify: build vet test race cover-check fuzz-smoke bench-data-smoke bench-commit-smoke bench-recovery-smoke bench-fleet-smoke

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# bench-json measures the cloud data path (dump upload, recovery prefetch,
# sealer allocs) on the deterministic simulated WAN and records the result
# in BENCH_datapath.json. Virtual-clock latencies: exact and
# machine-independent.
bench-json:
	$(GO) run ./cmd/ginja-benchjson -out BENCH_datapath.json

bench-json-smoke:
	$(GO) run ./cmd/ginja-benchjson -smoke

# bench-data is the streamed-datapath gate: ginja-benchjson exits non-zero
# if the dump's peak resident bytes exceed 2 × CheckpointUploaders ×
# MaxObjectSize, if the dump did not actually split into parts, if bytes
# stayed queued after close, or if legacy whole-sealed objects stopped
# recovering. The smoke variant runs the small scenario and is part of
# `make verify`.
bench-data:
	$(GO) run ./cmd/ginja-benchjson -out BENCH_datapath.json

bench-data-smoke:
	$(GO) run ./cmd/ginja-benchjson -smoke

# bench-delta regenerates the delta_checkpoint section of
# BENCH_datapath.json: the same deterministic 1 %-dirty workload run with
# incremental delta checkpoints and with classic full re-dumps.
# ginja-benchjson exits non-zero if a delta crossing ships (or reads
# under the stop-writes gate) more than 15 % of a full re-dump, if
# recovering through a maximum-length chain costs more than 2x a fresh
# base, if either recovery is not byte-identical to the primary, or if
# the streaming memory bound changed. The smoke variant runs inside
# bench-data-smoke and is therefore part of `make verify`.
bench-delta:
	$(GO) run ./cmd/ginja-benchjson -out BENCH_datapath.json

bench-delta-smoke:
	$(GO) run ./cmd/ginja-benchjson -smoke

# bench-commit measures the commit path before/after WAL batch packing —
# throughput, batch-latency quantiles, PUTs-per-batch, allocs-per-commit
# and the costmodel $/day projection — and records BENCH_commitpath.json.
# Deterministic: latencies are virtual time on the simulated 40 ms WAN.
bench-commit:
	$(GO) run ./cmd/ginja-benchjson -path commit -out BENCH_commitpath.json

bench-commit-smoke:
	$(GO) run ./cmd/ginja-benchjson -path commit -smoke

# bench-recovery measures RPO and RTO directly: deterministic sim fault
# schedules (crash mid-batch, outage then crash, crash during a multi-part
# dump) replayed across seeds under the virtual clock, reporting data-loss
# window and recovery-time percentiles plus the per-phase RTO budget into
# BENCH_recovery.json. ginja-benchjson exits non-zero if any scenario
# fails its consistent-prefix check, recovers nothing, or if no run
# measures a non-zero data-loss window (the RPO watermark regressed).
bench-recovery:
	$(GO) run ./cmd/ginja-benchjson -path recovery -out BENCH_recovery.json

bench-recovery-smoke:
	$(GO) run ./cmd/ginja-benchjson -path recovery -smoke

# bench-fleet measures fleet mode — many tenant databases multiplexed in
# one process over shared upload/fetch pools and one bucket — swept over
# 1/10/100/1000 tenants: per-tenant goroutine and heap footprint, the
# hot tenant's commit p50/p99 while an antagonist tenant dumps, and the
# fleet-wide Safety-deadline-miss count, into BENCH_fleet.json.
# ginja-benchjson exits non-zero if any sweep point records a Safety
# deadline miss, if commit p50 at 100 tenants exceeds 1.5x solo, or if
# the per-tenant footprint grows more than 10% from 10 to 1000 tenants.
# The smoke variant sweeps 1/10/100 and is part of `make verify`.
bench-fleet:
	$(GO) run ./cmd/ginja-benchjson -path fleet -out BENCH_fleet.json

bench-fleet-smoke:
	$(GO) run ./cmd/ginja-benchjson -path fleet -smoke
