GO ?= go

# Per-target budget for fuzz-smoke (Go -fuzztime syntax).
FUZZTIME ?= 10s

.PHONY: build test vet race verify fuzz-smoke bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: pipeline + metrics registry,
# the simulated cloud (virtual-clock latency/outage state), and the
# deterministic simulation driver.
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/cloud/... ./internal/sim/...

# fuzz-smoke gives each wire-format fuzz target a short budget on top of
# the checked-in corpus (internal/core/testdata/fuzz/). Reproduce a
# finding with: go test ./internal/core -run 'FuzzX/<entry>'
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzParseWALObjectName$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzParseDBObjectName$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzDecodeWrites$$' -fuzztime $(FUZZTIME)

# verify is the tier-1 gate (see ROADMAP.md): everything must pass before
# a change lands.
verify: build vet test race fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .
