// Package ginja is a disaster-recovery middleware for transactional
// databases that replicates committed state to cloud object storage —
// no backup VM required — reproducing the system described in
// "Ginja: One-dollar Cloud-based Disaster Recovery for Databases"
// (Alcântara, Oliveira, Bessani — Middleware '17).
//
// Ginja sits between a database engine and its files: every write the
// engine performs goes through an interposed file system (FS), is
// classified into the events of the paper's Table 1 (update commit,
// checkpoint begin/data/end), and is replicated to an ObjectStore as WAL
// objects and DB objects. Two parameters control the cost / performance /
// durability trade-off:
//
//   - Batch (B): how many database updates go into each cloud upload.
//   - Safety (S): how many updates may be lost in a disaster; the
//     database blocks once S updates are unacknowledged.
//
// # Quick start
//
//	store, _ := ginja.NewDiskStore("./bucket")         // or NewS3Client(...)
//	local, _ := ginja.NewOSFS("./dbdir")
//	g, _ := ginja.New(local, store, ginja.NewPGProcessor(), ginja.DefaultParams())
//	_ = g.Boot(ctx)                                    // upload the initial copy
//	db, _ := ginja.OpenDB(g.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
//	// ... use db; commits are replicated automatically ...
//	_ = g.Close()
//
// After a disaster, point a fresh Ginja at the same store and call
// Recover: the database files are rebuilt from the newest dump, the
// incremental checkpoints, and the WAL objects with consecutive
// timestamps; the database engine then completes its own crash recovery.
//
// This package is a façade: implementations live under internal/ and are
// re-exported here as the supported surface.
package ginja

import (
	"net/http"

	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/cloud/cloudsim"
	"github.com/ginja-dr/ginja/internal/cloud/s3http"
	"github.com/ginja-dr/ginja/internal/core"
	"github.com/ginja-dr/ginja/internal/dbevent"
	"github.com/ginja-dr/ginja/internal/minidb"
	"github.com/ginja-dr/ginja/internal/minidb/innoengine"
	"github.com/ginja-dr/ginja/internal/minidb/pgengine"
	"github.com/ginja-dr/ginja/internal/obs"
	"github.com/ginja-dr/ginja/internal/simclock"
	"github.com/ginja-dr/ginja/internal/vfs"
)

// Core middleware types.
type (
	// Ginja is the disaster-recovery middleware instance.
	Ginja = core.Ginja
	// Params is the user-facing configuration (Batch, Safety, timeouts,
	// uploaders, compression, encryption, PITR retention).
	Params = core.Params
	// Stats is a snapshot of replication activity counters.
	Stats = core.Stats
	// VerifyResult reports a backup-verification run.
	VerifyResult = core.VerifyResult
	// RecoveryBreakdown is the phased RTO budget of the last Recover,
	// RecoverAt or Verify restore (also in Stats.LastRecovery).
	RecoveryBreakdown = core.RecoveryBreakdown
	// CloudView is Ginja's bookkeeping of the objects in the cloud.
	CloudView = core.CloudView
	// WALObjectInfo describes one WAL object in the cloud.
	WALObjectInfo = core.WALObjectInfo
	// DBObjectInfo describes one DB object (dump or checkpoint).
	DBObjectInfo = core.DBObjectInfo
)

// New creates a Ginja instance protecting the database files in localFS,
// replicating to store, understanding the engine's write pattern via proc.
// Follow with exactly one of Boot, Reboot or Recover.
var New = core.New

// DefaultParams returns the paper-flavoured defaults (B=100, S=1000,
// 5 uploaders, 20 MB object cap, 150 % dump threshold).
var DefaultParams = core.DefaultParams

// NoLossParams returns the synchronous-replication configuration
// (S = B = 1): zero data loss, lowest throughput.
var NoLossParams = core.NoLoss

// ErrNoDump is returned by Recover when the cloud holds no dump.
var ErrNoDump = core.ErrNoDump

// DefaultCostCeilingPerDay is the WAL-PUT spend ceiling the adaptive
// batch controller enforces when Params.CostCeilingPerDay is zero —
// the paper's one-dollar-per-month budget expressed per day.
const DefaultCostCeilingPerDay = core.DefaultCostCeilingPerDay

// DefaultMaxDeltaChain and DefaultDeltaCompactRatio bound the delta
// chain when Params.DeltaCheckpoints is on and the knobs are zero: the
// chain folds into a fresh full dump past this many deltas, or once its
// summed payload exceeds this fraction of the database.
const (
	DefaultMaxDeltaChain     = core.DefaultMaxDeltaChain
	DefaultDeltaCompactRatio = core.DefaultDeltaCompactRatio
)

// Version is the release version reported by the ginja_build_info metric.
const Version = core.Version

// ObjectFormatVersion is the cloud object wire-format generation, also a
// ginja_build_info label (see DESIGN.md for the compatibility contract).
const ObjectFormatVersion = core.ObjectFormatVersion

// Deterministic time. Params.Clock (and SimOptions.Clock) accept any
// Clock; nil means the wall clock. A SimClock runs the whole stack —
// TB/TS timers, retry backoff, checkpoint scheduling, simulated-cloud
// latency — in virtual time for deterministic simulation testing (see
// DESIGN.md §10 and internal/sim for the fault-schedule driver).
type (
	// Clock supplies every timer and timestamp Ginja takes.
	Clock = simclock.Clock
	// ClockTimer is the resettable timer a Clock hands out.
	ClockTimer = simclock.Timer
	// SimClock is the virtual clock: time advances only when the test
	// driver (or its Pump) fires pending timers.
	SimClock = simclock.SimClock
)

// RealClock returns the wall-clock Clock (the nil-Params.Clock default).
var RealClock = simclock.Real

// NewSimClock returns a virtual clock starting at a fixed epoch.
var NewSimClock = simclock.NewSim

// Observability. Set Params.Metrics to a *MetricsRegistry and Ginja
// streams per-stage pipeline latencies, queue-depth gauges, Safety
// blocked time, the ginja_rpo_seconds durability watermark and
// cloud-operation telemetry into it; expose it over HTTP with
// MetricsHandler (Prometheus /metrics, /healthz, /statusz, and the
// /tracez recent/slowest span buffer). Stats (above) stays the
// poll-style snapshot — including Stats.RPO and Stats.LastRecovery —
// and Stats.LastError lets health checks see pipeline failures without
// internal access.
type (
	// MetricsRegistry is a concurrency-safe registry of named counters,
	// gauges and bounded-memory streaming histograms.
	MetricsRegistry = obs.Registry
	// MetricLabels attaches dimensions to an instrument (e.g. op="put").
	MetricLabels = obs.Labels
	// MetricCounter is a monotonically increasing value.
	MetricCounter = obs.Counter
	// MetricGauge is a value that can go up and down (or be sampled from
	// a function at export time).
	MetricGauge = obs.Gauge
	// MetricHistogram is a fixed-bucket, log-scaled streaming histogram.
	MetricHistogram = obs.Histogram
	// MetricSnapshot is one instrument's state, as served by /statusz.
	MetricSnapshot = obs.MetricSnapshot
	// HealthStatus is the outcome of one registered health check.
	HealthStatus = obs.HealthStatus
	// InstrumentedStore wraps any ObjectStore with per-op latency, byte
	// and error telemetry plus a reachability health check.
	InstrumentedStore = obs.InstrumentedStore
	// Span is one completed pipeline or recovery operation in the /tracez
	// buffer (batch lifetimes, WAL PUTs, recovery phases).
	Span = obs.Span
	// SpanRing is the bounded recent + slowest-N span buffer behind
	// /tracez; Registry.Spans exposes a registry's ring.
	SpanRing = obs.SpanRing
)

// NewMetricsRegistry returns an empty metrics registry.
var NewMetricsRegistry = obs.NewRegistry

// InstrumentStore wraps a store with per-op telemetry recorded into reg
// under the given backend label, and registers a "store:<backend>"
// reachability check on /healthz.
var InstrumentStore = obs.InstrumentStore

// MetricsHandler serves /metrics (Prometheus text format), /healthz,
// /statusz and /tracez for a registry. status (may be nil) is sampled
// per /statusz request — pass func() any { return g.Stats() }.
func MetricsHandler(r *MetricsRegistry, status func() any) http.Handler {
	return obs.Handler(r, status)
}

// Object storage.
type (
	// ObjectStore is the PUT/GET/LIST/DELETE interface Ginja replicates to.
	ObjectStore = cloud.ObjectStore
	// ObjectInfo describes one stored object.
	ObjectInfo = cloud.ObjectInfo
	// PriceSheet prices cloud operations for cost accounting.
	PriceSheet = cloud.PriceSheet
	// MeteredStore wraps a store with operation metering and billing.
	MeteredStore = cloud.MeteredStore
	// SimOptions configures the simulated cloud (latency/fault model).
	SimOptions = cloudsim.Options
	// SimProfile is a network behaviour model for the simulated cloud.
	SimProfile = cloudsim.Profile
)

// ErrObjectNotFound is returned by Get/Delete for missing objects.
var ErrObjectNotFound = cloud.ErrNotFound

// NewMemStore returns an in-memory object store (tests, demos).
var NewMemStore = cloud.NewMemStore

// NewDiskStore returns an object store persisted in a local directory.
var NewDiskStore = cloud.NewDiskStore

// NewMeteredStore wraps a store with operation counters and a bill.
var NewMeteredStore = cloud.NewMeteredStore

// AmazonS3Prices returns the May-2017 S3 price sheet the paper uses.
var AmazonS3Prices = cloud.AmazonS3May2017

// NewS3Client returns an ObjectStore speaking to an s3http server (such
// as cmd/cloudsim) at baseURL.
var NewS3Client = s3http.NewClient

// NewS3ClientWithToken is NewS3Client with bearer-token authentication.
var NewS3ClientWithToken = s3http.NewClientWithToken

// NewS3Handler wraps an ObjectStore in an S3-style HTTP handler.
var NewS3Handler = s3http.NewHandler

// NewS3HandlerWithToken is NewS3Handler requiring a bearer token.
var NewS3HandlerWithToken = s3http.NewHandlerWithToken

// NewSimStore wraps a store with the simulated network behaviour
// (size-dependent latency, jitter, outages, transient failures).
var NewSimStore = cloudsim.New

// WANProfile models the paper's testbed network (Lisbon → S3 US East).
var WANProfile = cloudsim.WANProfile

// LANProfile models recovering inside the provider's region.
var LANProfile = cloudsim.LANProfile

// NewReplicatedStore combines several clouds with majority writes for
// provider-scale fault tolerance (paper §6).
var NewReplicatedStore = core.NewReplicatedStore

// NewObservedReplicatedStore is NewReplicatedStore with each provider
// wrapped in an InstrumentedStore ("replica-0", "replica-1", ...) so
// /metrics and /healthz report per-replica latency, errors and health.
var NewObservedReplicatedStore = core.NewObservedReplicatedStore

type (
	// ReplicatedStore is the multi-cloud store; run Repair after a
	// provider outage to restore full redundancy.
	ReplicatedStore = core.ReplicatedStore
	// RepairReport summarises one anti-entropy pass.
	RepairReport = core.RepairReport
)

// Warm standby. A Follower continuously tails the cloud bucket into a
// local replica (incremental LIST diffing, parallel prefetch,
// recovery-order apply), so that after a disaster Promote hands back a
// live Ginja in O(replication lag) instead of the O(database size) a cold
// Recover pays. Set Params.RetainFor (and RetainObjects) on the primary
// to keep superseded objects long enough for RecoverAt to hit any
// point in the retention window.
type (
	// Follower is the warm-standby replica tailing an ObjectStore.
	Follower = core.Follower
	// FollowerStats snapshots a Follower's tailing activity and lag.
	FollowerStats = core.FollowerStats
)

// NewFollower creates a warm standby replicating the bucket in store
// into localFS; Start begins tailing, Promote performs the disaster
// handoff.
var NewFollower = core.NewFollower

// Fleet mode. One process protects many tenant databases over shared
// resources: one bucket (per-tenant key prefixes), one bounded upload
// pool and one bounded fetch pool with a fairness scheduler (WAL PUTs
// are deadline-scheduled and never starved by bulk dump traffic; bulk
// traffic is per-tenant capped and aged so checkpoints always make
// progress), and one tick wheel multiplexing every tenant's timers.
// Admit adds a tenant (returning a fully wired *Ginja), Evict removes
// one; the marginal cost of an idle tenant is a few goroutines and a
// few tens of kilobytes (see `make bench-fleet`).
type (
	// Fleet multiplexes many Ginja instances over shared pools.
	Fleet = core.Fleet
	// FleetParams configures the shared store, pool sizes, fairness
	// knobs, metrics registry and clock.
	FleetParams = core.FleetParams
	// FleetStats snapshots fleet-wide scheduler and tenant state.
	FleetStats = core.FleetStats
)

// NewFleet creates an empty fleet over a shared ObjectStore.
var NewFleet = core.NewFleet

// ValidatePrefix reports whether a Params.Prefix (or tenant id) is
// well-formed: non-empty path segments of [A-Za-z0-9._-], no leading
// or trailing "/", no "." or ".." segments.
var ValidatePrefix = core.ValidatePrefix

// Fleet defaults, used when the corresponding FleetParams field is zero.
const (
	// DefaultFleetUploadSlots bounds concurrent PUT/DELETE ops fleet-wide.
	DefaultFleetUploadSlots = core.DefaultFleetUploadSlots
	// DefaultFleetFetchSlots bounds concurrent GET/LIST ops fleet-wide.
	DefaultFleetFetchSlots = core.DefaultFleetFetchSlots
	// DefaultFleetTenantCap bounds one tenant's in-flight bulk ops.
	DefaultFleetTenantCap = core.DefaultFleetTenantCap
	// DefaultFleetBulkAgingAfter is how long a queued bulk op waits
	// before it may take priority over fresher Safety traffic.
	DefaultFleetBulkAgingAfter = core.DefaultFleetBulkAgingAfter
)

// NewPrefixStore namespaces a store under a key prefix: every object
// the returned store reads or writes lives under prefix+"/". Ginja
// applies Params.Prefix internally; use this to inspect one tenant's
// slice of a shared bucket from the outside.
var NewPrefixStore = cloud.NewPrefixStore

// File system interposition.
type (
	// FS is the file-system surface database engines run on.
	FS = vfs.FS
	// File is a positional-I/O file handle.
	File = vfs.File
	// Observer receives intercepted file-system events.
	Observer = vfs.Observer
)

// NewOSFS returns an FS rooted at a host directory.
var NewOSFS = vfs.NewOSFS

// NewMemFS returns an in-memory FS (tests, demos, verification targets).
var NewMemFS = vfs.NewMemFS

// NewInterceptFS wraps an FS so every mutation is reported to an Observer.
var NewInterceptFS = vfs.NewInterceptFS

// Event processors (the only DBMS-specific part of Ginja).
type (
	// Processor classifies a database's writes into Table 1 events.
	Processor = dbevent.Processor
	// Event is one classified write.
	Event = dbevent.Event
)

// NewPGProcessor detects PostgreSQL's write pattern.
var NewPGProcessor = dbevent.NewPGProcessor

// NewInnoProcessor detects MySQL/InnoDB's write pattern.
var NewInnoProcessor = dbevent.NewInnoProcessor

// ProcessorForEngine returns the processor for "postgresql" or "mysql".
var ProcessorForEngine = dbevent.ForEngine

// Embedded database engine (the DBMS substrate of this reproduction).
type (
	// DB is the embedded transactional database.
	DB = minidb.DB
	// Txn is a read-your-writes transaction.
	Txn = minidb.Txn
	// DBOptions tunes a DB instance.
	DBOptions = minidb.Options
	// Engine is a DBMS file-layout personality.
	Engine = minidb.Engine
)

// OpenDB opens (or crash-recovers) a database whose files live on fsys.
// Open it on a Ginja's FS() to protect it.
var OpenDB = minidb.Open

// NewPostgresEngine returns the PostgreSQL-like personality (8 KiB WAL
// pages, 16 MiB pg_xlog segments, sharp checkpoints, pg_control).
func NewPostgresEngine() Engine { return pgengine.New() }

// NewMySQLEngine returns the MySQL/InnoDB-like personality (512-byte log
// blocks, circular ib_logfiles, fuzzy checkpoints).
func NewMySQLEngine() Engine { return innoengine.New() }

// EngineFor returns the engine personality for "postgresql" or "mysql",
// or nil for unknown names.
func EngineFor(name string) Engine {
	switch name {
	case "postgresql":
		return pgengine.New()
	case "mysql":
		return innoengine.New()
	default:
		return nil
	}
}

// Database errors.
var (
	// ErrKeyNotFound is returned by DB.Get / Txn.Get for missing keys.
	ErrKeyNotFound = minidb.ErrNotFound
	// ErrNoTable is returned for operations on unknown tables.
	ErrNoTable = minidb.ErrNoTable
	// ErrDBClosed is returned after DB.Close.
	ErrDBClosed = minidb.ErrClosed
)
