package ginja_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/ginja-dr/ginja"
)

// TestPublicAPIEndToEnd exercises the README quick-start flow through the
// façade only: protect, write, disaster, recover.
func TestPublicAPIEndToEnd(t *testing.T) {
	ctx := context.Background()
	store := ginja.NewMemStore()

	params := ginja.DefaultParams()
	params.Batch = 4
	params.Safety = 64
	params.BatchTimeout = 20 * time.Millisecond

	local := ginja.NewMemFS()
	g, err := ginja.New(local, store, ginja.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Boot(ctx); err != nil {
		t.Fatal(err)
	}
	db, err := ginja.OpenDB(g.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k%02d", i)
		if err := db.Update(func(tx *ginja.Txn) error {
			return tx.Put("t", []byte(key), []byte(key))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !g.Flush(10 * time.Second) {
		t.Fatal("flush")
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	g2, err := ginja.New(ginja.NewMemFS(), store, ginja.NewPGProcessor(), params)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	db2, err := ginja.OpenDB(g2.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k%02d", i)
		if _, err := db2.Get("t", []byte(key)); err != nil {
			t.Fatalf("%s lost: %v", key, err)
		}
	}
}

func TestPublicAPIEngineSelection(t *testing.T) {
	if e := ginja.EngineFor("postgresql"); e == nil || e.Name() != "postgresql" {
		t.Fatalf("EngineFor(postgresql) = %v", e)
	}
	if e := ginja.EngineFor("mysql"); e == nil || e.Name() != "mysql" {
		t.Fatalf("EngineFor(mysql) = %v", e)
	}
	if e := ginja.EngineFor("oracle"); e != nil {
		t.Fatalf("EngineFor(oracle) = %v", e)
	}
	if p := ginja.ProcessorForEngine("mysql"); p == nil || p.Name() != "mysql" {
		t.Fatalf("ProcessorForEngine(mysql) = %v", p)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	g, err := ginja.New(ginja.NewMemFS(), ginja.NewMemStore(), ginja.NewPGProcessor(), ginja.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Recover(context.Background()); !errors.Is(err, ginja.ErrNoDump) {
		t.Fatalf("Recover on empty cloud = %v, want ErrNoDump", err)
	}
	db, err := ginja.OpenDB(ginja.NewMemFS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("t", []byte("missing")); !errors.Is(err, ginja.ErrKeyNotFound) {
		t.Fatalf("Get = %v, want ErrKeyNotFound", err)
	}
	if _, err := db.Get("ghost", []byte("k")); !errors.Is(err, ginja.ErrNoTable) {
		t.Fatalf("Get = %v, want ErrNoTable", err)
	}
}

func TestPublicAPINoLossParams(t *testing.T) {
	p := ginja.NoLossParams()
	if p.Batch != 1 || p.Safety != 1 {
		t.Fatalf("NoLossParams = B=%d S=%d", p.Batch, p.Safety)
	}
}

func TestPublicAPIPriceSheet(t *testing.T) {
	prices := ginja.AmazonS3Prices()
	if prices.StoragePerGBMonth != 0.023 {
		t.Fatalf("StoragePerGBMonth = %v", prices.StoragePerGBMonth)
	}
	m := ginja.NewMeteredStore(ginja.NewMemStore(), prices)
	if err := m.Put(context.Background(), "k", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if m.Bill().Total() <= 0 {
		t.Fatal("empty bill")
	}
}
