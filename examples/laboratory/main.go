// Laboratory: the paper's clinical-laboratory scenario (Table 2) —
// a small institution (10 GB-class database, ~6 updates/minute) protected
// for well under a dollar a month. This example runs a scaled-down
// version of that workload against a metered simulated cloud, then prints
// the measured bill side by side with the paper's cost model and the EC2
// Pilot-Light alternative.
//
//	go run ./examples/laboratory
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ginja-dr/ginja"
	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/costmodel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// Meter every cloud operation at S3 prices.
	metered := ginja.NewMeteredStore(ginja.NewMemStore(), ginja.AmazonS3Prices())

	params := ginja.DefaultParams()
	params.Batch = 6 // one synchronization per minute at 6 updates/minute
	params.Safety = 60
	params.Compress = true

	local := ginja.NewMemFS()
	g, err := ginja.New(local, metered, ginja.NewPGProcessor(), params)
	if err != nil {
		return err
	}
	if err := g.Boot(ctx); err != nil {
		return err
	}
	defer g.Close()

	db, err := ginja.OpenDB(g.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		return err
	}
	if err := db.CreateTable("analyses", 0); err != nil {
		return err
	}

	// A burst of "clinical analyses" commits — 120 updates, i.e. about 20
	// minutes of the laboratory's traffic compressed into a moment.
	fmt.Println("committing 120 laboratory analyses ...")
	for i := 0; i < 120; i++ {
		record := fmt.Sprintf(`{"analysis":%d,"result":"ok","time":"09:%02d"}`, i, i%60)
		if err := db.Update(func(tx *ginja.Txn) error {
			return tx.Put("analyses", []byte(fmt.Sprintf("a-%05d", i)), []byte(record))
		}); err != nil {
			return err
		}
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if !g.Flush(30 * time.Second) {
		return fmt.Errorf("uploads did not drain")
	}
	waitForCheckpoint(g)

	s := g.Stats()
	counts := metered.Counts()
	fmt.Printf("cloud activity: %d PUTs, %.1f KB uploaded, %d deletes (GC)\n",
		counts.Puts, float64(counts.BytesUp)/1024, counts.Deletes)
	fmt.Printf("ginja: %d updates → %d syncs; %d checkpoints, %d dumps\n",
		s.UpdatesObserved, s.Batches, s.Checkpoints, s.Dumps)

	// What this behaviour costs per month, measured vs modelled.
	fmt.Println()
	fmt.Println("Paper Table 2 (cost model, full-scale laboratory):")
	prices := cloud.AmazonS3May2017()
	for _, syncs := range []float64{1, 6} {
		sc := costmodel.Laboratory(syncs)
		fmt.Printf("  %.0f sync/min: Ginja $%.2f/month vs EC2 VM $%.1f/month (%.0f× cheaper)\n",
			syncs, sc.GinjaMonthly(prices).Total(), sc.VMMonthly, sc.SavingsFactor(prices))
	}
	return nil
}

func waitForCheckpoint(g *ginja.Ginja) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := g.Stats()
		// The checkpoint upload and the garbage collection it triggers
		// both happen on the background CheckpointThread.
		if s.Checkpoints+s.Dumps > 0 && s.WALObjectsDeleted > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
