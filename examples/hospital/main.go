// Hospital: the paper's high-end scenario (Table 2) — a 1 TB-class
// database with hundreds of transactions per minute, where DB-object
// storage dominates the bill. This example drives a MySQL-personality
// database (circular redo log, fuzzy checkpoints) under a TPC-C-style
// load, through an S3-style HTTP server running in-process, and reports
// the measured cloud usage next to the paper's hospital economics.
//
//	go run ./examples/hospital
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"github.com/ginja-dr/ginja"
	"github.com/ginja-dr/ginja/internal/cloud"
	"github.com/ginja-dr/ginja/internal/costmodel"
	"github.com/ginja-dr/ginja/internal/workload/tpcc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// The hospital talks to its storage cloud over HTTP: an S3-style
	// server (the same handler cmd/cloudsim serves) backed by memory.
	backend := ginja.NewMemStore()
	srv := httptest.NewServer(ginja.NewS3Handler(backend))
	defer srv.Close()
	client := ginja.NewS3Client(srv.URL, srv.Client())
	metered := ginja.NewMeteredStore(client, ginja.AmazonS3Prices())

	params := ginja.DefaultParams()
	params.Batch = 23 // ≈138 updates/min at 6 syncs/min
	params.Safety = 300
	params.Compress = true

	local := ginja.NewMemFS()
	g, err := ginja.New(local, metered, ginja.NewInnoProcessor(), params)
	if err != nil {
		return err
	}
	if err := g.Boot(ctx); err != nil {
		return err
	}
	defer g.Close()

	db, err := ginja.OpenDB(g.FS(), ginja.NewMySQLEngine(), ginja.DBOptions{})
	if err != nil {
		return err
	}
	cfg := tpcc.Config{Warehouses: 2, Districts: 4, Customers: 10, Items: 50, Terminals: 8, Seed: 11}
	fmt.Println("loading the hospital's OLTP schema (TPC-C) ...")
	if err := tpcc.Load(db, cfg); err != nil {
		return err
	}
	fmt.Println("running the ward's transaction mix for 3 seconds ...")
	res, err := tpcc.NewDriver(db, cfg).Run(ctx, 3*time.Second)
	if err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	if !g.Flush(time.Minute) {
		return fmt.Errorf("uploads did not drain")
	}

	s := g.Stats()
	counts := metered.Counts()
	fmt.Printf("throughput: Tpm-C %.0f, Tpm-Total %.0f\n", res.TpmC, res.TpmTotal)
	fmt.Printf("cloud (over HTTP): %d PUTs, %.1f MB up, %d deletes; ginja uploaded %d WAL + %d DB objects\n",
		counts.Puts, float64(counts.BytesUp)/(1<<20), counts.Deletes,
		s.WALObjectsUploaded, s.DBObjectsUploaded)

	fmt.Println()
	fmt.Println("Paper Table 2 (cost model, full-scale 1 TB hospital):")
	prices := cloud.AmazonS3May2017()
	for _, syncs := range []float64{1, 6} {
		sc := costmodel.Hospital(syncs)
		c := sc.GinjaMonthly(prices)
		fmt.Printf("  %.0f sync/min: Ginja $%.2f/month (storage $%.2f dominates) vs EC2 VM $%.1f (%.0f× cheaper)\n",
			syncs, c.Total(), c.DBStorage, sc.VMMonthly, sc.SavingsFactor(prices))
	}
	fmt.Printf("  recovery after a disaster: $%.2f to on-premises, free to an in-region VM (§7.3)\n",
		costmodel.RecoveryCost(costmodel.Hospital(1).Deployment(), prices, false))
	return nil
}
