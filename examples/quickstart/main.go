// Quickstart: protect a database with Ginja, destroy the primary, and
// recover everything from the cloud — the full disaster-recovery loop in
// one file.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ginja-dr/ginja"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// The "cloud": an in-memory object store here; swap in
	// ginja.NewDiskStore or ginja.NewS3Client for something durable.
	store := ginja.NewMemStore()

	// ---- Primary site ----------------------------------------------
	local := ginja.NewMemFS()
	g, err := ginja.New(local, store, ginja.NewPGProcessor(), ginja.DefaultParams())
	if err != nil {
		return err
	}
	if err := g.Boot(ctx); err != nil { // upload the initial (empty) copy
		return err
	}

	// Open the database ON GINJA'S FILE SYSTEM: that is the whole
	// integration — every commit is intercepted and replicated.
	db, err := ginja.OpenDB(g.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		return err
	}
	if err := db.CreateTable("accounts", 0); err != nil {
		return err
	}
	for i := 0; i < 100; i++ {
		acct := fmt.Sprintf("acct-%03d", i)
		err := db.Update(func(tx *ginja.Txn) error {
			return tx.Put("accounts", []byte(acct), []byte(fmt.Sprintf("balance=%d", i*10)))
		})
		if err != nil {
			return err
		}
	}
	if !g.Flush(30 * time.Second) { // wait for the cloud to acknowledge
		return fmt.Errorf("uploads did not drain")
	}
	s := g.Stats()
	fmt.Printf("replicated %d updates as %d WAL objects (%d cloud syncs)\n",
		s.UpdatesObserved, s.WALObjectsUploaded, s.Batches)

	// ---- DISASTER: the primary site is gone -------------------------
	// (local, g and db are simply abandoned — nothing from the primary
	// survives.)
	_ = g.Close()

	// ---- Secondary site: recover from the cloud ---------------------
	fresh := ginja.NewMemFS()
	g2, err := ginja.New(fresh, store, ginja.NewPGProcessor(), ginja.DefaultParams())
	if err != nil {
		return err
	}
	if err := g2.Recover(ctx); err != nil {
		return err
	}
	defer g2.Close()

	db2, err := ginja.OpenDB(g2.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		return err
	}
	defer db2.Close()
	for _, probe := range []string{"acct-000", "acct-050", "acct-099"} {
		v, err := db2.Get("accounts", []byte(probe))
		if err != nil {
			return fmt.Errorf("lost %s in the disaster: %w", probe, err)
		}
		fmt.Printf("recovered %s → %s\n", probe, v)
	}
	fmt.Println("disaster recovery complete: all accounts restored")
	return nil
}
