// Multi-cloud: replicate the backup across several storage providers so
// that even a provider-scale outage (paper §6, citing DepSky [19], and
// the cloud-outage study [28]) cannot take the disaster-recovery copy
// down. Writes need a majority of providers; recovery reads from whoever
// answers.
//
//	go run ./examples/multicloud
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ginja-dr/ginja"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// Three independent "providers". Provider C sits behind the
	// fault-injecting simulator so we can take it down on demand.
	providerA := ginja.NewMemStore()
	providerB := ginja.NewMemStore()
	providerCBacking := ginja.NewMemStore()
	providerC := ginja.NewSimStore(providerCBacking, ginja.SimOptions{TimeScale: -1})

	multi, err := ginja.NewReplicatedStore(providerA, providerB, providerC)
	if err != nil {
		return err
	}

	params := ginja.DefaultParams()
	params.Batch = 4
	params.Safety = 64
	params.Encrypt = true // never hand plaintext to any provider
	params.Password = "multi-cloud-secret"

	local := ginja.NewMemFS()
	g, err := ginja.New(local, multi, ginja.NewPGProcessor(), params)
	if err != nil {
		return err
	}
	if err := g.Boot(ctx); err != nil {
		return err
	}
	defer g.Close()
	db, err := ginja.OpenDB(g.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		return err
	}
	if err := db.CreateTable("ledger", 0); err != nil {
		return err
	}

	write := func(from, to int) error {
		for i := from; i < to; i++ {
			if err := db.Update(func(tx *ginja.Txn) error {
				return tx.Put("ledger", []byte(fmt.Sprintf("entry-%03d", i)), []byte("amount=100"))
			}); err != nil {
				return err
			}
		}
		if !g.Flush(30 * time.Second) {
			return fmt.Errorf("flush")
		}
		return nil
	}

	if err := write(0, 20); err != nil {
		return err
	}
	fmt.Println("20 entries replicated to 3 providers")

	// Provider C suffers a full outage. A majority (A, B) remains — the
	// database never notices.
	providerC.StartOutage()
	fmt.Println("provider C goes DOWN (outage)")
	if err := write(20, 40); err != nil {
		return fmt.Errorf("writes failed during single-provider outage: %w", err)
	}
	fmt.Println("20 more entries replicated during the outage (majority quorum)")

	// Provider C comes back: one anti-entropy pass restores full
	// redundancy (every object re-replicated to C).
	providerC.EndOutage()
	report, err := multi.Repair(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("provider C repaired: %d objects copied back, %d garbage removed\n",
		report.Copied, report.Removed)

	// Disaster at the primary: recover from the providers.
	fresh := ginja.NewMemFS()
	g2, err := ginja.New(fresh, multi, ginja.NewPGProcessor(), params)
	if err != nil {
		return err
	}
	if err := g2.Recover(ctx); err != nil {
		return err
	}
	defer g2.Close()
	db2, err := ginja.OpenDB(g2.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		return err
	}
	defer db2.Close()
	for _, probe := range []string{"entry-000", "entry-020", "entry-039"} {
		if _, err := db2.Get("ledger", []byte(probe)); err != nil {
			return fmt.Errorf("%s lost: %w", probe, err)
		}
	}
	fmt.Println("recovered all 40 entries after the provider outage")
	return nil
}
