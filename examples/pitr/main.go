// Point-in-time recovery: the paper's §5.4 extension — retain old dump
// generations so the database can be restored to a state *before* an
// operator mistake or a ransomware-style corruption, "such as the recent
// WannaCry virus" (§5.4).
//
// The example keeps 3 generations, lets "ransomware" scramble every row,
// and then restores the last clean generation.
//
//	go run ./examples/pitr
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/ginja-dr/ginja"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	store := ginja.NewMemStore()

	params := ginja.DefaultParams()
	params.Batch = 4
	params.Safety = 64
	params.PITRGenerations = 3 // keep three restore points
	params.DumpThreshold = 1.0 // dump eagerly so generations cycle fast

	local := ginja.NewMemFS()
	g, err := ginja.New(local, store, ginja.NewPGProcessor(), params)
	if err != nil {
		return err
	}
	if err := g.Boot(ctx); err != nil {
		return err
	}
	defer g.Close()
	db, err := ginja.OpenDB(g.FS(), ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		return err
	}
	if err := db.CreateTable("documents", 8); err != nil {
		return err
	}

	// Three days of honest work, each ending in a checkpoint (= one
	// retained generation).
	for day := 1; day <= 3; day++ {
		for i := 0; i < 10; i++ {
			key := fmt.Sprintf("doc-%02d", i)
			val := fmt.Sprintf("day-%d content of %s", day, key)
			if err := db.Update(func(tx *ginja.Txn) error {
				return tx.Put("documents", []byte(key), []byte(val))
			}); err != nil {
				return err
			}
		}
		if !g.Flush(30 * time.Second) {
			return fmt.Errorf("flush day %d", day)
		}
		if err := db.Checkpoint(); err != nil {
			return err
		}
		waitUploads(g, int64(day))
		fmt.Printf("day %d checkpointed and replicated\n", day)
	}

	// Day 4: ransomware scrambles everything — and Ginja, faithfully,
	// replicates the damage.
	fmt.Println("day 4: RANSOMWARE encrypts every document ...")
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("doc-%02d", i)
		if err := db.Update(func(tx *ginja.Txn) error {
			return tx.Put("documents", []byte(key), []byte("!!ENCRYPTED-PAY-US!!"))
		}); err != nil {
			return err
		}
	}
	if !g.Flush(30 * time.Second) {
		return fmt.Errorf("flush ransomware writes")
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	waitUploads(g, 4)

	// A plain Recover would faithfully restore the corrupted state. The
	// retained generations let us go back instead.
	dumps := dumpGenerations(g)
	fmt.Printf("retained dump generations (by timestamp): %v\n", dumps)
	clean := dumps[len(dumps)-2] // the last generation before day 4

	target := ginja.NewMemFS()
	gr, err := ginja.New(ginja.NewMemFS(), store, ginja.NewPGProcessor(), params)
	if err != nil {
		return err
	}
	if err := gr.RecoverAt(ctx, target, clean); err != nil {
		return err
	}
	restored, err := ginja.OpenDB(target, ginja.NewPostgresEngine(), ginja.DBOptions{})
	if err != nil {
		return err
	}
	defer restored.Close()
	v, err := restored.Get("documents", []byte("doc-00"))
	if err != nil {
		return err
	}
	fmt.Printf("restored doc-00 from generation ts=%d: %q\n", clean, v)
	if string(v) == "!!ENCRYPTED-PAY-US!!" {
		return fmt.Errorf("restored the corrupted state — PITR failed")
	}
	fmt.Println("point-in-time recovery beat the ransomware")
	return nil
}

func waitUploads(g *ginja.Ginja, want int64) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := g.Stats()
		if s.Checkpoints+s.Dumps >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// dumpGenerations lists the retained dumps' timestamps, ascending.
func dumpGenerations(g *ginja.Ginja) []int64 {
	var out []int64
	for _, d := range g.View().DBObjects() {
		if d.Type == "dump" {
			out = append(out, d.Ts)
		}
	}
	return out
}
